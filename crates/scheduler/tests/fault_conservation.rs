//! Conservation laws of the faulty engine, as exact-arithmetic property
//! tests over RNG-driven capacity schedules.
//!
//! Every quantity in these tests is built from integer-valued times, core
//! counts, and runtimes, so all the core-second integrals are sums of
//! integers — exactly representable in `f64` no matter the summation
//! order. That turns "approximately conserved" into `==`:
//!
//! * **Work conservation.** The ledger's busy integral equals goodput
//!   (`Σ (finish − start) · cores` over completed jobs) plus the lost
//!   core-seconds destroyed by preemptions — no work leaks in or out.
//! * **Capacity conservation.** Busy + idle + offline core-seconds equals
//!   `total cores × horizon`, with the offline integral cross-checked
//!   against the schedule's own step function computed independently.
//! * **Job conservation.** Every trace job shows up exactly once in
//!   completed ∪ abandoned — nothing is silently dropped — and every
//!   abandoned job carries exactly `max_retries + 1` attempts (the
//!   schedules below always restore full capacity, so stranding cannot
//!   occur and the retry cap is the only abandonment path).

use dynsched_cluster::{AvailabilitySchedule, CapacityStep, Job, Platform};
use dynsched_policies::{Fcfs, Spt};
use dynsched_scheduler::{BackfillMode, QueueDiscipline, SchedulerConfig, SimWorkspace};
use dynsched_simkit::Rng;
use dynsched_workload::Trace;

const CORES: u32 = 16;

/// Integer-valued random trace: submits, runtimes, estimates, and widths
/// are all whole numbers, so every core-second product below is an
/// integer well inside `f64`'s exact range.
fn integer_trace(rng: &mut Rng, max_jobs: usize) -> Trace {
    let n = rng.range_u64(3, max_jobs as u64) as usize;
    let jobs: Vec<Job> = (0..n)
        .map(|i| {
            let submit = rng.range_u64(0, 2_000) as f64;
            let runtime = rng.range_u64(1, 1_500) as f64;
            let estimate = runtime + rng.range_u64(0, 500) as f64;
            let width = rng.range_u64(1, (CORES - 1) as u64) as u32;
            Job::new(i as u32, submit, runtime, estimate, width)
        })
        .collect();
    Trace::from_jobs(jobs)
}

/// Random integer-time capacity schedule whose final step restores the
/// full platform (so the queue can always drain and abandonment happens
/// only through the retry cap).
fn integer_schedule(rng: &mut Rng, max_retries: u32) -> AvailabilitySchedule {
    let mut times: Vec<u64> = (0..rng.range_u64(2, 8))
        .map(|_| rng.range_u64(1, 12_000))
        .collect();
    times.sort_unstable();
    times.dedup();
    let last = times.len() - 1;
    let steps: Vec<CapacityStep> = times
        .iter()
        .enumerate()
        .map(|(i, &t)| CapacityStep {
            time: t as f64,
            capacity: if i == last {
                CORES
            } else {
                rng.range_u64(1, CORES as u64) as u32
            },
        })
        .collect();
    AvailabilitySchedule::from_steps(steps, max_retries)
}

/// The schedule's offline integral over `[0, horizon]`, computed directly
/// from the step function — the independent cross-check for the ledger's
/// accrued value.
fn schedule_offline(schedule: &AvailabilitySchedule, horizon: f64) -> f64 {
    let steps = schedule.steps();
    let mut offline = 0.0;
    for (i, step) in steps.iter().enumerate() {
        let until = steps.get(i + 1).map_or(horizon, |s| s.time).min(horizon);
        if until > step.time {
            offline += f64::from(CORES - step.capacity) * (until - step.time);
        }
    }
    offline
}

fn configs() -> Vec<SchedulerConfig> {
    [
        BackfillMode::None,
        BackfillMode::Aggressive,
        BackfillMode::Conservative,
    ]
    .into_iter()
    .map(|backfill| {
        let mut c = SchedulerConfig::user_estimates(Platform::new(CORES));
        c.backfill = backfill;
        c
    })
    .collect()
}

#[test]
fn core_seconds_and_jobs_are_exactly_conserved_under_faults() {
    let mut rng = Rng::new(0xC0_4E_5E);
    let mut ws = SimWorkspace::new();
    let mut preemptions = 0u64;
    let mut abandonments = 0u64;
    for case in 0..12u64 {
        let trace = integer_trace(&mut rng, 40);
        let max_retries = rng.range_u64(0, 3) as u32;
        let schedule = integer_schedule(&mut rng, max_retries);
        for config in configs() {
            for discipline in [
                QueueDiscipline::Policy(&Fcfs),
                QueueDiscipline::Policy(&Spt),
            ] {
                ws.run_faulty(&trace, &discipline, &config, &schedule)
                    .unwrap();
                let result = ws.result();
                let last_step = schedule.steps().last().expect("non-empty").time;
                let horizon = result.makespan.max(last_step) + 1.0;

                // Work conservation: busy == goodput + lost, exactly.
                let goodput: f64 = result
                    .completed
                    .iter()
                    .map(|c| (c.finish - c.start) * f64::from(c.job.cores))
                    .sum();
                let busy = ws.busy_core_seconds(horizon);
                assert_eq!(
                    busy,
                    goodput + result.lost_core_seconds,
                    "case {case}: busy integral diverged from goodput + lost"
                );

                // Capacity conservation: busy + idle + offline == total ×
                // horizon, with offline matching the schedule's own step
                // function.
                let offline = ws.offline_core_seconds(horizon);
                assert_eq!(
                    offline,
                    schedule_offline(&schedule, horizon),
                    "case {case}: ledger offline integral diverged from the schedule"
                );
                let idle = f64::from(CORES) * horizon - busy - offline;
                assert!(
                    idle >= 0.0,
                    "case {case}: negative idle time ({idle} core-seconds)"
                );
                assert_eq!(busy + idle + offline, f64::from(CORES) * horizon);

                // Job conservation: every job id exactly once in
                // completed ∪ abandoned. (Ids, not trace positions:
                // `Trace::from_jobs` sorts by submit, so the two spaces
                // differ — `AbandonedJob` carries both.)
                let mut seen = vec![0u32; trace.len()];
                for c in &result.completed {
                    seen[c.job.id as usize] += 1;
                }
                for a in &result.abandoned {
                    assert_eq!(trace.jobs()[a.idx as usize].id, a.job.id);
                    seen[a.job.id as usize] += 1;
                    assert_eq!(
                        a.attempts,
                        max_retries + 1,
                        "case {case}: abandoned job {} did not exhaust its retries",
                        a.idx
                    );
                    assert!(a.abandoned_at.is_finite());
                }
                for (idx, &count) in seen.iter().enumerate() {
                    assert_eq!(
                        count, 1,
                        "case {case}: job {idx} reported {count} times (want exactly 1)"
                    );
                }

                preemptions += result.preempted_jobs;
                abandonments += result.abandoned.len() as u64;
            }
        }
    }
    // The generated schedules must actually exercise both fault paths, or
    // the conservation equalities above never see a non-trivial run.
    assert!(preemptions > 0, "no preemption ever happened");
    assert!(abandonments > 0, "no job ever hit its retry cap");
}

/// The same laws hold trivially (all-zero fault terms) for an empty
/// schedule — pinning that the accessors read zeros after a fault-free
/// run rather than stale integrals from a previous faulty one.
#[test]
fn empty_schedule_conserves_with_zero_fault_terms() {
    let mut rng = Rng::new(0x1D_7E);
    let mut ws = SimWorkspace::new();
    let trace = integer_trace(&mut rng, 30);
    let schedule = integer_schedule(&mut rng, 1);
    let config = SchedulerConfig::user_estimates(Platform::new(CORES));
    // A faulty run first, so any stale-state leak would be visible.
    ws.run_faulty(&trace, &QueueDiscipline::Policy(&Fcfs), &config, &schedule)
        .unwrap();
    ws.run(&trace, &QueueDiscipline::Policy(&Fcfs), &config);
    let result = ws.result();
    let horizon = result.makespan;
    assert_eq!(result.preempted_jobs, 0);
    assert_eq!(result.lost_core_seconds, 0.0);
    assert!(result.abandoned.is_empty());
    assert_eq!(ws.offline_core_seconds(horizon), 0.0);
    let goodput: f64 = result
        .completed
        .iter()
        .map(|c| (c.finish - c.start) * f64::from(c.job.cores))
        .sum();
    assert_eq!(ws.busy_core_seconds(horizon), goodput);
    assert_eq!(result.completed.len(), trace.len());
}
