//! Regression proof for the federation layer — three contracts:
//!
//! 1. **1-shard oracle pin.** A 1-shard federation degenerates to the
//!    ordinary single-cluster engine: every router routes everything to
//!    cluster 0, the slice presents the whole trace unchanged, and the
//!    shard result — and the merged global completion order — must be
//!    bit-identical to [`reference::simulate_reference`] (and its faulty
//!    twin under the same expanded schedule), at one worker thread and
//!    the pool's natural width.
//! 2. **Worker-count independence.** A k-shard federation is a pure
//!    function of `(trace, spec, discipline)`: the full
//!    [`FederationResult`] — routing table, per-shard schedules, merged
//!    order — is `==` at 1 and n worker threads, faulty runs included.
//! 3. **Shard independence.** A cluster's schedule depends only on its
//!    own routed subsequence and config: re-simulating each shard's jobs
//!    standalone (as an owned trace, through the plain engine) reproduces
//!    the in-federation shard result bit for bit, so changing the shard
//!    count can re-route jobs but never alters how a given subsequence
//!    schedules.

use dynsched_cluster::{FaultProfile, Job, Platform};
use dynsched_policies::{compile_expr, expr::parse_expr, paper_lineup};
use dynsched_scheduler::federation::{
    route, run_federation, run_federation_faulty, FederationSpec, Router,
};
use dynsched_scheduler::reference::{simulate_reference, simulate_reference_faulty};
use dynsched_scheduler::{simulate, QueueDiscipline, SchedulerConfig};
use dynsched_simkit::parallel::with_worker_limit;
use dynsched_simkit::Rng;
use dynsched_workload::Trace;

fn random_trace(rng: &mut Rng, jobs: usize, cores: u32) -> Trace {
    let list: Vec<Job> = (0..jobs)
        .map(|i| {
            let submit = rng.range_f64(0.0, 8_000.0);
            let runtime = rng.range_f64(1.0, 3_000.0);
            let over = rng.range_f64(1.0, 3.0);
            let width = rng.range_u64(1, cores as u64) as u32;
            Job::new(i as u32, submit, runtime, (runtime * over).max(1.0), width)
        })
        .collect();
    Trace::from_jobs(list)
}

fn config(cores: u32) -> SchedulerConfig {
    SchedulerConfig::actual_runtimes(Platform::new(cores))
}

fn routers(learned: &dynsched_policies::CompiledPolicy) -> Vec<Router<'_>> {
    vec![
        Router::RoundRobin,
        Router::LeastLoaded,
        Router::LocalityAware { spill: 500.0 },
        Router::Learned(learned),
    ]
}

#[test]
fn one_shard_federation_is_bit_identical_to_reference() {
    let mut rng = Rng::new(0xFED1);
    let learned = compile_expr("router", &parse_expr("w + r / n").unwrap());
    let lineup = paper_lineup();
    for case in 0..3u64 {
        let trace = random_trace(&mut rng, 60 + 20 * case as usize, 16);
        for router in routers(&learned) {
            let spec = FederationSpec::uniform(1, config(16), router);
            for policy in lineup.iter().take(4) {
                let discipline = QueueDiscipline::Policy(policy.as_ref());
                let oracle = simulate_reference(&trace, &discipline, &config(16));
                let wide = run_federation(&trace, &spec, &discipline).unwrap();
                let narrow =
                    with_worker_limit(1, || run_federation(&trace, &spec, &discipline).unwrap());
                assert_eq!(wide, narrow, "worker count leaked into a 1-shard run");
                assert_eq!(wide.shards[0], oracle, "1-shard != reference");
                assert_eq!(
                    wide.completed, oracle.completed,
                    "merge reordered a single shard"
                );
            }
        }
    }
}

#[test]
fn one_shard_compiled_discipline_matches_reference() {
    let mut rng = Rng::new(0xFED2);
    let trace = random_trace(&mut rng, 80, 16);
    let spec = FederationSpec::uniform(1, config(16), Router::LeastLoaded);
    for policy in paper_lineup().iter().take(4) {
        let Some(compiled) = policy.compile() else {
            continue;
        };
        let discipline = QueueDiscipline::Compiled(&compiled);
        let oracle = simulate_reference(&trace, &discipline, &config(16));
        let fed = run_federation(&trace, &spec, &discipline).unwrap();
        assert_eq!(fed.shards[0], oracle);
    }
}

#[test]
fn one_shard_faulty_federation_matches_the_faulty_reference() {
    let mut rng = Rng::new(0xFED3);
    let trace = random_trace(&mut rng, 80, 16);
    let profile = FaultProfile::failures(1_500.0, 600.0, 8, 0xBAD).with_max_retries(2);
    let spec = FederationSpec::uniform(1, config(16), Router::LeastLoaded);
    let lineup = paper_lineup();
    let policy = &lineup[0];
    let discipline = QueueDiscipline::Policy(policy.as_ref());
    // The federation expands shard 0's schedule over the shard's own
    // submission span with stream_index = 0; reproduce that expansion
    // for the oracle.
    let horizon = (0..trace.len())
        .map(|i| dynsched_workload::TraceSource::submit(&trace, i))
        .fold(0.0, f64::max);
    let schedule = profile.expand(16, horizon, 0);
    let oracle = simulate_reference_faulty(&trace, &discipline, &config(16), &schedule);
    let wide = run_federation_faulty(&trace, &spec, &discipline, &profile).unwrap();
    let narrow = with_worker_limit(1, || {
        run_federation_faulty(&trace, &spec, &discipline, &profile).unwrap()
    });
    assert_eq!(wide, narrow);
    assert_eq!(wide.shards[0], oracle);
    assert!(
        wide.shards[0].preempted_jobs > 0 || wide.shards[0].completed.len() == trace.len(),
        "fault schedule never bit — weaken the profile check"
    );
}

#[test]
fn k_shard_federation_is_worker_count_independent() {
    let mut rng = Rng::new(0xFED4);
    let learned = compile_expr("router", &parse_expr("w + r / n").unwrap());
    let lineup = paper_lineup();
    let profile = FaultProfile::failures(2_000.0, 500.0, 4, 0xF00D).with_max_retries(2);
    for &shards in &[2usize, 3, 5] {
        let trace = random_trace(&mut rng, 120, 16);
        for router in routers(&learned) {
            let spec = FederationSpec::uniform(shards, config(16), router);
            let policy = &lineup[1];
            let discipline = QueueDiscipline::Policy(policy.as_ref());
            let wide = run_federation(&trace, &spec, &discipline).unwrap();
            let narrow =
                with_worker_limit(1, || run_federation(&trace, &spec, &discipline).unwrap());
            assert_eq!(
                wide, narrow,
                "{shards}-shard zero-fault run varies with workers"
            );
            let wide_f = run_federation_faulty(&trace, &spec, &discipline, &profile).unwrap();
            let narrow_f = with_worker_limit(1, || {
                run_federation_faulty(&trace, &spec, &discipline, &profile).unwrap()
            });
            assert_eq!(
                wide_f, narrow_f,
                "{shards}-shard faulty run varies with workers"
            );
        }
    }
}

#[test]
fn shard_schedules_are_independent_of_the_federation_around_them() {
    let mut rng = Rng::new(0xFED5);
    let lineup = paper_lineup();
    for &shards in &[2usize, 3, 4] {
        let trace = random_trace(&mut rng, 150, 16);
        let spec = FederationSpec::uniform(shards, config(16), Router::LeastLoaded);
        let policy = &lineup[2];
        let discipline = QueueDiscipline::Policy(policy.as_ref());
        let fed = run_federation(&trace, &spec, &discipline).unwrap();
        let routing = route(&trace, &spec);
        assert_eq!(
            fed.shard_of, routing.shard_of,
            "routing is not a pure pre-pass"
        );
        for (s, positions) in routing.shards.iter().enumerate() {
            // Re-simulate the shard's jobs standalone through the plain
            // single-cluster entry point: an owned trace of the same jobs
            // must schedule bit-identically to the in-federation shard.
            let owned = Trace::from_jobs(
                positions
                    .iter()
                    .map(|&p| dynsched_workload::TraceSource::job(&trace, p as usize))
                    .collect(),
            );
            let standalone = simulate(&owned, &discipline, &config(16));
            assert_eq!(
                fed.shards[s], standalone,
                "shard {s} of {shards} scheduled differently inside the federation"
            );
        }
    }
}

#[test]
fn merged_order_is_finish_sorted_and_loses_no_job() {
    let mut rng = Rng::new(0xFED6);
    let trace = random_trace(&mut rng, 200, 16);
    let lineup = paper_lineup();
    let policy = &lineup[0];
    let discipline = QueueDiscipline::Policy(policy.as_ref());
    for &shards in &[1usize, 2, 4, 8] {
        let spec = FederationSpec::uniform(shards, config(16), Router::RoundRobin);
        let fed = run_federation(&trace, &spec, &discipline).unwrap();
        assert_eq!(fed.completed.len(), trace.len());
        assert!(fed.completed.windows(2).all(|w| w[0].finish <= w[1].finish));
        let mut ids: Vec<u32> = fed.completed.iter().map(|c| c.job.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), trace.len(), "merge dropped or duplicated a job");
    }
}
