//! Regression proof for the incremental queue-maintenance layer on top of
//! the compiled batch kernel: whatever shortcut the residual class
//! enables — order reuse with binary insertion for uniform-aging
//! residuals, partial top-k selection for general residuals under strict
//! scheduling — the resulting schedule must be **bit-identical** to the
//! interpreted full-re-sort twin ([`QueueDiscipline::Policy`]) and to the
//! scalar reference oracle, across all backfill modes, both decision
//! modes, both trace layouts, 1 vs n worker threads, arrival waves that
//! force the fallback sort, and fault schedules whose preemptions requeue
//! jobs mid-run (the binary-insert path under adversarial churn).

use dynsched_cluster::{AvailabilitySchedule, FaultProfile, Job, Platform};
use dynsched_policies::{
    CompiledPolicy, ExprPolicy, LearnedPolicy, Policy, ResidualClass, Unicef, Wfp3,
};
use dynsched_scheduler::reference::{simulate_reference, simulate_reference_faulty};
use dynsched_scheduler::{
    simulate, simulate_faulty, simulate_into, simulate_metrics_into, BackfillMode, QueueDiscipline,
    SchedulerConfig, SimMetrics, SimWorkspace,
};
use dynsched_simkit::parallel::{par_map_scoped, with_worker_limit};
use dynsched_simkit::Rng;
use dynsched_workload::Trace;

/// A trace that keeps the queue deep: submits clustered well inside the
/// total work span so dozens of jobs wait at once — the regime where the
/// incremental order and the top-k head actually differ from a trivial
/// queue.
fn saturated_trace(rng: &mut Rng, max_jobs: usize, cores: u32) -> Trace {
    let n = rng.range_u64(10, max_jobs as u64) as usize;
    let jobs: Vec<Job> = (0..n)
        .map(|i| {
            let submit = rng.range_f64(0.0, 2_000.0);
            let runtime = rng.range_f64(200.0, 4_000.0);
            let over = rng.range_f64(1.0, 3.0);
            let width = rng.range_u64(1, cores as u64 - 1) as u32;
            Job::new(i as u32, submit, runtime, (runtime * over).max(1.0), width)
        })
        .collect();
    Trace::from_jobs(jobs)
}

/// Bulk same-timestamp arrival waves: each wave dumps more fresh jobs
/// than the incremental reuse threshold admits, forcing the full-sort
/// fallback, while the trickle between waves exercises binary insertion.
fn wave_trace(rng: &mut Rng, waves: usize, wave_size: usize, cores: u32) -> Trace {
    let mut jobs = Vec::new();
    let mut id = 0u32;
    for w in 0..waves {
        let at = w as f64 * 700.0;
        for _ in 0..wave_size {
            let runtime = rng.range_f64(100.0, 2_500.0);
            let width = rng.range_u64(1, cores as u64 - 1) as u32;
            jobs.push(Job::new(id, at, runtime, runtime * 1.5, width));
            id += 1;
        }
        // Trickle arrivals between waves: one-at-a-time inserts.
        for k in 0..3 {
            let runtime = rng.range_f64(100.0, 2_500.0);
            jobs.push(Job::new(
                id,
                at + 50.0 * (k + 1) as f64,
                runtime,
                runtime,
                1,
            ));
            id += 1;
        }
    }
    Trace::from_jobs(jobs)
}

fn configs(cores: u32) -> Vec<SchedulerConfig> {
    let mut out = Vec::new();
    for backfill in [
        BackfillMode::None,
        BackfillMode::Aggressive,
        BackfillMode::Conservative,
    ] {
        let mut a = SchedulerConfig::actual_runtimes(Platform::new(cores));
        a.backfill = backfill;
        out.push(a);
        let mut e = SchedulerConfig::user_estimates(Platform::new(cores));
        e.backfill = backfill;
        out.push(e);
    }
    out
}

/// One policy per maintenance path: uniform-aging residuals (incremental
/// order reuse), general residuals (top-k under strict mode), and a
/// static learned function (enqueue-time scalar scoring, no lanes).
fn lineup() -> Vec<Box<dyn Policy>> {
    vec![
        Box::new(ExprPolicy::parse("G1-aging", "log10(r)*n + 8.70e2*log10(s) - 1.5e-2*w").unwrap()),
        Box::new(ExprPolicy::parse("linear-aging", "inv(r)*n - w").unwrap()),
        Box::new(ExprPolicy::parse("ratio-aging", "-((w / (r + 1)) ^ 2) * sqrt(n)").unwrap()),
        Box::new(Wfp3),
        Box::new(Unicef),
        Box::new(LearnedPolicy::f1()),
    ]
}

#[test]
fn lineup_covers_every_residual_class() {
    // The suite proves nothing if the policies all classify the same way:
    // pin each policy's class so the incremental, top-k, and static paths
    // are all known to be on somewhere below.
    let classes: Vec<(String, ResidualClass)> = lineup()
        .iter()
        .map(|p| {
            let cp = p.compile().unwrap();
            (p.name().to_string(), cp.residual_class())
        })
        .collect();
    let count = |c: ResidualClass| classes.iter().filter(|(_, k)| *k == c).count();
    assert_eq!(
        count(ResidualClass::UniformAging),
        2,
        "aging expressions must classify as uniform-aging: {classes:?}"
    );
    assert!(
        count(ResidualClass::General) >= 3,
        "ratio/WFP3/UNICEF must stay general: {classes:?}"
    );
    assert_eq!(
        count(ResidualClass::Static),
        1,
        "F1 must classify as static: {classes:?}"
    );
}

#[test]
fn random_event_sequences_match_full_resort_and_reference() {
    let mut rng = Rng::new(0x1C2E5C0);
    let policies = lineup();
    let mut ws = SimWorkspace::new();
    for case in 0..4u64 {
        let trace = saturated_trace(&mut rng, 60, 8);
        let view = trace.to_view();
        for config in configs(8) {
            for policy in &policies {
                let compiled = policy.compile().expect("lineup compiles");
                let interp = QueueDiscipline::Policy(policy.as_ref());
                let comp = QueueDiscipline::Compiled(&compiled);
                // Interpreted path: score-everything + full re-sort twin.
                let a = simulate(&trace, &interp, &config);
                // Compiled path: incremental / top-k / static shortcut.
                let b = simulate(&trace, &comp, &config);
                assert_eq!(a, b, "case {case}, {}: maintenance diverged", policy.name());
                // Columnar layout and workspace reuse change nothing.
                let b_view = simulate_into(&mut ws, &view, &comp, &config);
                assert_eq!(a, b_view, "case {case}, {}: SoA", policy.name());
                // Metrics-only streaming agrees with the full fold.
                let m = simulate_metrics_into(&mut ws, &view, &comp, &config, 10.0);
                assert_eq!(m, SimMetrics::from_result(&a, 10.0));
                // The scalar full-sort oracle agrees bit for bit.
                let r = simulate_reference(&trace, &comp, &config);
                assert_eq!(a, r, "case {case}, {}: reference", policy.name());
            }
        }
    }
}

#[test]
fn arrival_waves_force_fallback_and_stay_identical() {
    let mut rng = Rng::new(0x3A7E5);
    let policies = lineup();
    for case in 0..3u64 {
        // Waves of 25 overwhelm the reuse threshold (16.max(len / 8)) at
        // every realistic queue depth; the trickle jobs binary-insert.
        let trace = wave_trace(&mut rng, 4, 25, 8);
        for config in configs(8) {
            for policy in &policies {
                let compiled = policy.compile().unwrap();
                let a = simulate(&trace, &QueueDiscipline::Policy(policy.as_ref()), &config);
                let b = simulate(&trace, &QueueDiscipline::Compiled(&compiled), &config);
                assert_eq!(a, b, "case {case}, {}: wave run diverged", policy.name());
            }
        }
    }
}

#[test]
fn preempt_requeue_churn_matches_the_faulty_oracle() {
    // Fault schedules preempt running jobs back into the queue mid-run:
    // requeued jobs enter at the queue tail and must binary-insert into a
    // standing order (or be carried by the fallback sort) exactly where
    // the full re-sort would place them.
    let mut rng = Rng::new(0xFA_0C7);
    let policies = lineup();
    let mut preemptions = 0u64;
    for case in 0..3u64 {
        let trace = saturated_trace(&mut rng, 45, 8);
        let schedule = FaultProfile::failures(1_200.0, 500.0, 4, 0xBAD5EED + case)
            .with_max_retries(2)
            .expand(8, 16_000.0, case);
        for config in configs(8) {
            for policy in &policies {
                let compiled = policy.compile().unwrap();
                let comp = QueueDiscipline::Compiled(&compiled);
                let oracle = simulate_reference_faulty(&trace, &comp, &config, &schedule);
                let fast = simulate_faulty(&trace, &comp, &config, &schedule).unwrap();
                assert_eq!(
                    oracle,
                    fast,
                    "case {case}, {}: faulty incremental run diverged",
                    policy.name()
                );
                let interp = simulate_faulty(
                    &trace,
                    &QueueDiscipline::Policy(policy.as_ref()),
                    &config,
                    &schedule,
                )
                .unwrap();
                assert_eq!(
                    interp,
                    fast,
                    "case {case}, {}: compiled vs interpreted under faults",
                    policy.name()
                );
                preemptions += fast.preempted_jobs;
            }
        }
    }
    assert!(
        preemptions > 0,
        "no preemption ever exercised the requeue path"
    );
}

#[test]
fn empty_schedule_keeps_incremental_runs_bit_identical() {
    // The zero-fault contract holds through the new maintenance layer.
    let mut rng = Rng::new(0xE5C0);
    let empty = AvailabilitySchedule::empty();
    let trace = saturated_trace(&mut rng, 40, 8);
    for config in configs(8) {
        for policy in &lineup() {
            let compiled = policy.compile().unwrap();
            let comp = QueueDiscipline::Compiled(&compiled);
            let plain = simulate(&trace, &comp, &config);
            let faulty = simulate_faulty(&trace, &comp, &config, &empty).unwrap();
            assert_eq!(plain, faulty, "{}: empty schedule diverged", policy.name());
        }
    }
}

#[test]
fn incremental_fanout_is_thread_count_independent() {
    let mut rng = Rng::new(0x1CFA0);
    let traces: Vec<Trace> = (0..3).map(|_| saturated_trace(&mut rng, 50, 8)).collect();
    let views: Vec<_> = traces.iter().map(Trace::to_view).collect();
    let policies = lineup();
    let compiled: Vec<CompiledPolicy> = policies.iter().map(|p| p.compile().unwrap()).collect();
    for config in configs(8) {
        let cells: Vec<(usize, usize)> = (0..compiled.len())
            .flat_map(|p| (0..views.len()).map(move |s| (p, s)))
            .collect();
        let run_fanout = || {
            par_map_scoped(&cells, SimWorkspace::new, |&(p, s), ws| {
                simulate_metrics_into(
                    ws,
                    &views[s],
                    &QueueDiscipline::Compiled(&compiled[p]),
                    &config,
                    10.0,
                )
            })
        };
        let wide = run_fanout();
        let narrow = with_worker_limit(1, run_fanout);
        assert_eq!(wide, narrow, "incremental fan-out depends on worker count");
        for (&(p, s), got) in cells.iter().zip(&wide) {
            let want = SimMetrics::from_result(
                &simulate(
                    &traces[s],
                    &QueueDiscipline::Policy(policies[p].as_ref()),
                    &config,
                ),
                10.0,
            );
            assert_eq!(got, &want, "cell ({p}, {s}) diverged from interpreted");
        }
    }
}
