//! Regression proof for the columnar trace layout: a simulation over the
//! SoA columns of a [`TraceView`] must be **bit-identical** to the same
//! simulation over the AoS [`Trace`] it was columnarized from — same
//! completed set in the same order, same makespan, utilization, event and
//! backfill counts — across policies, fixed orders, all three backfill
//! modes, decision modes, and both engine modes (full and metrics-only),
//! at one worker thread and at the pool's natural width.
//!
//! This is the layout half of the trace-store contract (the interning
//! half — distinct keys never share an entry — lives in the workload
//! crate's `store` tests): together they make a store-backed evaluation
//! grid observably indistinguishable from per-cell trace construction.

use dynsched_cluster::{Job, Platform};
use dynsched_policies::paper_lineup;
use dynsched_scheduler::{
    simulate, simulate_into, simulate_metrics_into, BackfillMode, QueueDiscipline, SchedulerConfig,
    SimMetrics, SimWorkspace,
};
use dynsched_simkit::parallel::{par_map_scoped, with_worker_limit};
use dynsched_simkit::Rng;
use dynsched_workload::{Trace, TraceView};

fn random_trace(rng: &mut Rng, max_jobs: usize, cores: u32) -> Trace {
    let n = rng.range_u64(2, max_jobs as u64) as usize;
    let jobs: Vec<Job> = (0..n)
        .map(|i| {
            let submit = rng.range_f64(0.0, 4_000.0);
            let runtime = rng.range_f64(1.0, 4_000.0);
            let over = rng.range_f64(1.0, 3.0);
            let width = rng.range_u64(1, cores as u64 - 1) as u32;
            Job::new(i as u32, submit, runtime, (runtime * over).max(1.0), width)
        })
        .collect();
    Trace::from_jobs(jobs)
}

fn configs(cores: u32) -> Vec<SchedulerConfig> {
    let mut out = Vec::new();
    for backfill in [
        BackfillMode::None,
        BackfillMode::Aggressive,
        BackfillMode::Conservative,
    ] {
        let mut a = SchedulerConfig::actual_runtimes(Platform::new(cores));
        a.backfill = backfill;
        out.push(a);
        let mut e = SchedulerConfig::user_estimates(Platform::new(cores));
        e.backfill = backfill;
        out.push(e);
    }
    out
}

#[test]
fn view_simulations_are_bit_identical_to_trace_simulations() {
    let mut rng = Rng::new(0x50A1D);
    let lineup = paper_lineup();
    let mut ws = SimWorkspace::new();
    for case in 0..6u64 {
        let trace = random_trace(&mut rng, 60, 16);
        let view = trace.to_view();
        for config in configs(16) {
            for policy in &lineup {
                let discipline = QueueDiscipline::Policy(policy.as_ref());
                let aos = simulate(&trace, &discipline, &config);
                let soa = simulate(&view, &discipline, &config);
                assert_eq!(aos, soa, "case {case}, {}: layouts diverged", policy.name());
                // Workspace reuse across alternating layouts leaks nothing.
                let reused = simulate_into(&mut ws, &view, &discipline, &config);
                assert_eq!(
                    aos, reused,
                    "case {case}: reused workspace diverged on view"
                );
                // Metrics-only mode agrees too.
                let m_aos = simulate_metrics_into(&mut ws, &trace, &discipline, &config, 10.0);
                let m_soa = simulate_metrics_into(&mut ws, &view, &discipline, &config, 10.0);
                assert_eq!(m_aos, m_soa, "case {case}: metrics diverged across layouts");
                assert_eq!(m_soa, SimMetrics::from_result(&aos, 10.0));
            }
        }
    }
}

#[test]
fn fixed_order_views_match_trace_runs() {
    let mut rng = Rng::new(0xF17ED);
    for _ in 0..5 {
        let trace = random_trace(&mut rng, 40, 8);
        let view = trace.to_view();
        let mut ranks: Vec<usize> = (0..trace.len()).collect();
        rng.shuffle(&mut ranks);
        let config = SchedulerConfig::actual_runtimes(Platform::new(8));
        let aos = simulate(&trace, &QueueDiscipline::FixedOrder(&ranks), &config);
        let soa = simulate(&view, &QueueDiscipline::FixedOrder(&ranks), &config);
        assert_eq!(aos, soa);
    }
}

/// The store's consumption pattern: many cells share one view's columns
/// across worker threads, each worker holding a reusable workspace. The
/// fanned-out results must equal the sequential per-cell AoS loop at any
/// worker count.
#[test]
fn shared_view_fanout_is_thread_count_independent() {
    let mut rng = Rng::new(0xFA_207);
    let traces: Vec<Trace> = (0..4).map(|_| random_trace(&mut rng, 50, 16)).collect();
    let views: Vec<TraceView> = traces.iter().map(Trace::to_view).collect();
    let lineup = paper_lineup();
    let config = SchedulerConfig::estimates_with_backfilling(Platform::new(16));

    // Cells reference the *same* shared columns per sequence.
    let cells: Vec<(usize, usize)> = (0..lineup.len())
        .flat_map(|p| (0..views.len()).map(move |s| (p, s)))
        .collect();
    let run_fanout = || {
        par_map_scoped(&cells, SimWorkspace::new, |&(p, s), ws| {
            simulate_metrics_into(
                ws,
                &views[s],
                &QueueDiscipline::Policy(lineup[p].as_ref()),
                &config,
                10.0,
            )
        })
    };
    let wide = run_fanout();
    let narrow = with_worker_limit(1, run_fanout);
    assert_eq!(
        wide, narrow,
        "fan-out over shared columns depends on worker count"
    );

    // And both equal the historical per-cell path: a fresh AoS trace
    // simulated per cell.
    for (&(p, s), got) in cells.iter().zip(&wide) {
        let want = SimMetrics::from_result(
            &simulate(
                &traces[s],
                &QueueDiscipline::Policy(lineup[p].as_ref()),
                &config,
            ),
            10.0,
        );
        assert_eq!(
            got, &want,
            "cell ({p}, {s}) diverged from per-cell AoS simulate"
        );
    }
}
