//! Offline stand-in for [criterion.rs](https://bheisler.github.io/criterion.rs/).
//!
//! The build environment has no crates.io access, so this crate implements
//! the API subset the `dynsched-bench` suite uses — `Criterion`,
//! `BenchmarkGroup`, `Bencher::iter`, `Throughput` — as a small wall-clock
//! harness: warm up for the configured duration, then measure batches until
//! the measurement budget is spent, and report the per-iteration mean with
//! min/max over batches. No statistics beyond that; the point is a stable,
//! machine-parsable number per benchmark, not confidence intervals.
//!
//! Output format (one line per benchmark):
//! `bench: <id> ... <mean> per iter (min <min>, max <max>, N iters)`

use std::time::{Duration, Instant};

/// Throughput annotation for a benchmark group (elements or bytes per
/// iteration); reported as a rate next to the timing line.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The benchmark processes this many logical elements per iteration.
    Elements(u64),
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
}

/// One finished measurement.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Benchmark identifier (`group/name` for grouped benches).
    pub id: String,
    /// Mean seconds per iteration.
    pub mean_s: f64,
    /// Fastest batch, seconds per iteration.
    pub min_s: f64,
    /// Slowest batch, seconds per iteration.
    pub max_s: f64,
    /// Total iterations measured.
    pub iters: u64,
    /// Optional throughput annotation.
    pub throughput: Option<Throughput>,
}

impl Measurement {
    /// Elements (or bytes) per second, when a throughput is annotated.
    pub fn rate(&self) -> Option<f64> {
        let per_iter = match self.throughput? {
            Throughput::Elements(n) | Throughput::Bytes(n) => n as f64,
        };
        (self.mean_s > 0.0).then(|| per_iter / self.mean_s)
    }
}

fn fmt_time(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} µs", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher<'a> {
    config: &'a Config,
    samples: Vec<(u64, Duration)>,
}

impl Bencher<'_> {
    /// Run `f` repeatedly: warm up for the configured warm-up time, then
    /// measure batches until the measurement budget is spent.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm-up: also estimates the per-iteration cost so batches can be
        // sized to make timer overhead negligible.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.config.warm_up {
            std::hint::black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
        let budget = self.config.measurement.as_secs_f64();
        let batches = self.config.sample_size.max(2) as u64;
        let batch_iters = ((budget / batches as f64 / per_iter.max(1e-9)).floor() as u64).max(1);
        self.samples.clear();
        for _ in 0..batches {
            let t0 = Instant::now();
            for _ in 0..batch_iters {
                std::hint::black_box(f());
            }
            self.samples.push((batch_iters, t0.elapsed()));
        }
    }
}

#[derive(Debug, Clone)]
struct Config {
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    filter: Option<String>,
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    config: Config,
    results: Vec<Measurement>,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            config: Config {
                sample_size: 10,
                warm_up: Duration::from_millis(300),
                measurement: Duration::from_secs(2),
                filter: None,
            },
            results: Vec::new(),
        }
    }
}

impl Criterion {
    /// Number of measured batches per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.config.sample_size = n;
        self
    }

    /// Warm-up duration before measurement starts.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.config.warm_up = d;
        self
    }

    /// Total measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.config.measurement = d;
        self
    }

    /// Pick up a name filter from the command line (`cargo bench -- foo`).
    /// Harness flags (`--bench`, `--exact`, …) are ignored.
    pub fn configure_from_args(mut self) -> Self {
        self.config.filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-'))
            .filter(|a| !a.is_empty());
        self
    }

    fn run_one(
        &mut self,
        id: String,
        throughput: Option<Throughput>,
        f: &mut dyn FnMut(&mut Bencher<'_>),
    ) {
        if let Some(filter) = &self.config.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        let mut b = Bencher {
            config: &self.config,
            samples: Vec::new(),
        };
        f(&mut b);
        let mut total_iters = 0u64;
        let mut total_time = 0.0f64;
        let mut min_s = f64::INFINITY;
        let mut max_s: f64 = 0.0;
        for &(iters, dt) in &b.samples {
            let per = dt.as_secs_f64() / iters as f64;
            min_s = min_s.min(per);
            max_s = max_s.max(per);
            total_iters += iters;
            total_time += dt.as_secs_f64();
        }
        let mean_s = if total_iters > 0 {
            total_time / total_iters as f64
        } else {
            0.0
        };
        let m = Measurement {
            id,
            mean_s,
            min_s,
            max_s,
            iters: total_iters,
            throughput,
        };
        let rate = m
            .rate()
            .map(|r| {
                let unit = match m.throughput {
                    Some(Throughput::Bytes(_)) => "B/s",
                    _ => "elem/s",
                };
                format!("  ({r:.0} {unit})")
            })
            .unwrap_or_default();
        println!(
            "bench: {:<48} {:>12} per iter (min {}, max {}, {} iters){}",
            m.id,
            fmt_time(m.mean_s),
            fmt_time(m.min_s),
            fmt_time(m.max_s),
            m.iters,
            rate
        );
        self.results.push(m);
    }

    /// Measure one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(&mut self, id: &str, mut f: F) -> &mut Self {
        self.run_one(id.to_string(), None, &mut f);
        self
    }

    /// Open a named group (ids become `group/name`).
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
        }
    }

    /// All measurements taken so far (for machine-readable exports).
    pub fn measurements(&self) -> &[Measurement] {
        &self.results
    }

    /// Print a closing summary of every measurement.
    pub fn final_summary(&mut self) {
        if self.results.is_empty() {
            return;
        }
        println!(
            "\n--- benchmark summary ({} benches) ---",
            self.results.len()
        );
        for m in &self.results {
            println!("  {:<48} {:>12}/iter", m.id, fmt_time(m.mean_s));
        }
    }
}

/// Grouped benchmarks with a shared throughput annotation.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotate subsequent benches with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Measure one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        let t = self.throughput;
        self.criterion.run_one(full, t, &mut f);
        self
    }

    /// Close the group (retained for API compatibility).
    pub fn finish(self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast() -> Criterion {
        Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5))
    }

    #[test]
    fn measures_and_records() {
        let mut c = fast();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        assert_eq!(c.measurements().len(), 1);
        assert!(c.measurements()[0].iters > 0);
        assert!(c.measurements()[0].mean_s >= 0.0);
    }

    #[test]
    fn group_prefixes_ids_and_rates() {
        let mut c = fast();
        let mut g = c.benchmark_group("grp");
        g.throughput(Throughput::Elements(100));
        g.bench_function("x", |b| b.iter(|| std::hint::black_box(2 * 2)));
        g.finish();
        let m = &c.measurements()[0];
        assert_eq!(m.id, "grp/x");
        assert!(m.rate().unwrap() > 0.0);
    }

    #[test]
    fn filter_skips_mismatches() {
        let mut c = fast();
        c.config.filter = Some("only-this".to_string());
        c.bench_function("other", |b| b.iter(|| ()));
        assert!(c.measurements().is_empty());
    }
}
