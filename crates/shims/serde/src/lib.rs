//! No-op stand-in for `serde`.
//!
//! Provides the `Serialize`/`Deserialize` names in both the trait and the
//! derive-macro namespaces so `use serde::{Deserialize, Serialize}` plus
//! `#[derive(Serialize, Deserialize)]` compile unchanged. The derives
//! expand to nothing (see the sibling `serde_derive` shim) — nothing
//! in-tree serializes values, the annotations only declare intent for a
//! future on-disk format. Replace with the real crates when needed.

/// Marker trait matching `serde::Serialize`'s name. No functionality.
pub trait Serialize {}

/// Marker trait matching `serde::Deserialize`'s name. No functionality.
pub trait Deserialize<'de> {}

pub use serde_derive::{Deserialize, Serialize};
