//! No-op stand-in for `serde_derive`.
//!
//! The build environment has no crates.io access, and nothing in-tree
//! actually serializes values yet — the `#[derive(Serialize, Deserialize)]`
//! attributes across the workspace only declare intent. These derives
//! therefore expand to nothing (no trait impls), which keeps every
//! annotated type compiling without pulling in the real serde machinery.
//! Swap this shim for the real crates the day an on-disk format needs it.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` (and `#[serde(...)]` helper attributes)
/// and expands to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` (and `#[serde(...)]` helper attributes)
/// and expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
