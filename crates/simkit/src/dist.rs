//! Statistical distributions used by the workload models.
//!
//! The Lublin–Feitelson model needs gamma and *hyper-gamma* (two-component
//! gamma mixture) variates, plus the "two-stage uniform" distribution used
//! for job sizes in log space. The Tsafrir estimate model needs categorical
//! draws. All samplers consume the in-tree [`crate::rng::Rng`] so the
//! whole pipeline stays deterministic under a single seed.

use crate::rng::Rng;

/// A sampleable one-dimensional distribution.
pub trait Sample {
    /// Draw one variate.
    fn sample(&self, rng: &mut Rng) -> f64;

    /// Theoretical mean, if defined in closed form.
    fn mean(&self) -> Option<f64> {
        None
    }
}

/// Continuous uniform distribution on `[lo, hi)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uniform {
    lo: f64,
    hi: f64,
}

impl Uniform {
    /// Create a uniform distribution; requires `lo <= hi` and finite bounds.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(
            lo.is_finite() && hi.is_finite() && lo <= hi,
            "invalid uniform bounds"
        );
        Self { lo, hi }
    }
}

impl Sample for Uniform {
    fn sample(&self, rng: &mut Rng) -> f64 {
        rng.range_f64(self.lo, self.hi)
    }

    fn mean(&self) -> Option<f64> {
        Some(0.5 * (self.lo + self.hi))
    }
}

/// Exponential distribution with rate `lambda`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    lambda: f64,
}

impl Exponential {
    /// Create an exponential distribution; requires `lambda > 0`.
    pub fn new(lambda: f64) -> Self {
        assert!(
            lambda > 0.0 && lambda.is_finite(),
            "lambda must be positive"
        );
        Self { lambda }
    }

    /// The distribution's rate parameter.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }
}

impl Sample for Exponential {
    fn sample(&self, rng: &mut Rng) -> f64 {
        -rng.next_f64_open().ln() / self.lambda
    }

    fn mean(&self) -> Option<f64> {
        Some(1.0 / self.lambda)
    }
}

/// Normal distribution via the Marsaglia polar method.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mu: f64,
    sigma: f64,
}

impl Normal {
    /// Create a normal distribution; requires `sigma >= 0`.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(
            sigma >= 0.0 && sigma.is_finite() && mu.is_finite(),
            "invalid normal params"
        );
        Self { mu, sigma }
    }
}

impl Sample for Normal {
    fn sample(&self, rng: &mut Rng) -> f64 {
        // Marsaglia polar method; we discard the second variate to keep the
        // sampler stateless (costs one extra loop iteration on average).
        loop {
            let u = 2.0 * rng.next_f64() - 1.0;
            let v = 2.0 * rng.next_f64() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                let factor = (-2.0 * s.ln() / s).sqrt();
                return self.mu + self.sigma * u * factor;
            }
        }
    }

    fn mean(&self) -> Option<f64> {
        Some(self.mu)
    }
}

/// Gamma distribution with shape `alpha` and scale `beta`
/// (mean `alpha * beta`), sampled with the Marsaglia–Tsang method.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gamma {
    alpha: f64,
    beta: f64,
}

impl Gamma {
    /// Create a gamma distribution; requires `alpha > 0`, `beta > 0`.
    pub fn new(alpha: f64, beta: f64) -> Self {
        assert!(alpha > 0.0 && alpha.is_finite(), "alpha must be positive");
        assert!(beta > 0.0 && beta.is_finite(), "beta must be positive");
        Self { alpha, beta }
    }

    /// Shape parameter.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Scale parameter.
    pub fn beta(&self) -> f64 {
        self.beta
    }

    fn sample_standard(shape: f64, rng: &mut Rng) -> f64 {
        if shape < 1.0 {
            // Boost: X = gamma(shape+1) * U^(1/shape).
            let x = Self::sample_standard(shape + 1.0, rng);
            let u = rng.next_f64_open();
            return x * u.powf(1.0 / shape);
        }
        let d = shape - 1.0 / 3.0;
        let c = 1.0 / (9.0 * d).sqrt();
        let normal = Normal::new(0.0, 1.0);
        loop {
            let x = normal.sample(rng);
            let v = 1.0 + c * x;
            if v <= 0.0 {
                continue;
            }
            let v = v * v * v;
            let u = rng.next_f64_open();
            let x2 = x * x;
            if u < 1.0 - 0.0331 * x2 * x2 {
                return d * v;
            }
            if u.ln() < 0.5 * x2 + d * (1.0 - v + v.ln()) {
                return d * v;
            }
        }
    }
}

impl Sample for Gamma {
    fn sample(&self, rng: &mut Rng) -> f64 {
        Self::sample_standard(self.alpha, rng) * self.beta
    }

    fn mean(&self) -> Option<f64> {
        Some(self.alpha * self.beta)
    }
}

/// Hyper-gamma distribution: a two-component gamma mixture.
///
/// With probability `p` the variate comes from `Gamma(a1, b1)`, otherwise
/// from `Gamma(a2, b2)`. This is the runtime distribution of the
/// Lublin–Feitelson model, where `p` itself depends linearly on the job size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HyperGamma {
    first: Gamma,
    second: Gamma,
    p: f64,
}

impl HyperGamma {
    /// Create a hyper-gamma mixture; `p` is clamped to `[0, 1]`.
    pub fn new(a1: f64, b1: f64, a2: f64, b2: f64, p: f64) -> Self {
        Self {
            first: Gamma::new(a1, b1),
            second: Gamma::new(a2, b2),
            p: p.clamp(0.0, 1.0),
        }
    }

    /// Mixture probability of the first component.
    pub fn p(&self) -> f64 {
        self.p
    }
}

impl Sample for HyperGamma {
    fn sample(&self, rng: &mut Rng) -> f64 {
        if rng.chance(self.p) {
            self.first.sample(rng)
        } else {
            self.second.sample(rng)
        }
    }

    fn mean(&self) -> Option<f64> {
        Some(self.p * self.first.mean().unwrap() + (1.0 - self.p) * self.second.mean().unwrap())
    }
}

/// Log-normal distribution: `exp(N(mu, sigma))`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    normal: Normal,
}

impl LogNormal {
    /// Create a log-normal distribution with underlying normal `N(mu, sigma)`.
    pub fn new(mu: f64, sigma: f64) -> Self {
        Self {
            normal: Normal::new(mu, sigma),
        }
    }
}

impl Sample for LogNormal {
    fn sample(&self, rng: &mut Rng) -> f64 {
        self.normal.sample(rng).exp()
    }
}

/// Weibull distribution with shape `k` and scale `lambda`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Weibull {
    k: f64,
    lambda: f64,
}

impl Weibull {
    /// Create a Weibull distribution; requires positive parameters.
    pub fn new(k: f64, lambda: f64) -> Self {
        assert!(k > 0.0 && lambda > 0.0, "weibull params must be positive");
        Self { k, lambda }
    }
}

impl Sample for Weibull {
    fn sample(&self, rng: &mut Rng) -> f64 {
        self.lambda * (-rng.next_f64_open().ln()).powf(1.0 / self.k)
    }
}

/// The "two-stage uniform" distribution of the Lublin–Feitelson model.
///
/// A value is drawn uniformly from `[lo, med]` with probability `prob` and
/// from `[med, hi]` otherwise. The model uses it for `log2(job size)`, which
/// concentrates mass on small jobs while keeping a tail of large ones.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TwoStageUniform {
    lo: f64,
    med: f64,
    hi: f64,
    prob: f64,
}

impl TwoStageUniform {
    /// Create the distribution; requires `lo <= med <= hi`, `prob` in `[0,1]`.
    pub fn new(lo: f64, med: f64, hi: f64, prob: f64) -> Self {
        assert!(
            lo <= med && med <= hi,
            "two-stage uniform needs lo <= med <= hi"
        );
        assert!((0.0..=1.0).contains(&prob), "prob must be in [0,1]");
        Self { lo, med, hi, prob }
    }
}

impl Sample for TwoStageUniform {
    fn sample(&self, rng: &mut Rng) -> f64 {
        if rng.chance(self.prob) {
            rng.range_f64(self.lo, self.med)
        } else {
            rng.range_f64(self.med, self.hi)
        }
    }

    fn mean(&self) -> Option<f64> {
        Some(
            self.prob * 0.5 * (self.lo + self.med) + (1.0 - self.prob) * 0.5 * (self.med + self.hi),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empirical_mean(dist: &impl Sample, n: usize, seed: u64) -> f64 {
        let mut rng = Rng::new(seed);
        (0..n).map(|_| dist.sample(&mut rng)).sum::<f64>() / n as f64
    }

    fn empirical_var(dist: &impl Sample, n: usize, seed: u64) -> f64 {
        let mut rng = Rng::new(seed);
        let xs: Vec<f64> = (0..n).map(|_| dist.sample(&mut rng)).collect();
        let m = xs.iter().sum::<f64>() / n as f64;
        xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (n as f64 - 1.0)
    }

    #[test]
    fn uniform_mean_and_bounds() {
        let d = Uniform::new(2.0, 6.0);
        let mut rng = Rng::new(1);
        for _ in 0..10_000 {
            let x = d.sample(&mut rng);
            assert!((2.0..6.0).contains(&x));
        }
        assert!((empirical_mean(&d, 100_000, 2) - 4.0).abs() < 0.05);
    }

    #[test]
    fn exponential_mean() {
        let d = Exponential::new(0.25);
        assert!((empirical_mean(&d, 200_000, 3) - 4.0).abs() < 0.1);
    }

    #[test]
    fn exponential_is_positive() {
        let d = Exponential::new(2.0);
        let mut rng = Rng::new(4);
        for _ in 0..10_000 {
            assert!(d.sample(&mut rng) >= 0.0);
        }
    }

    #[test]
    fn normal_moments() {
        let d = Normal::new(3.0, 2.0);
        assert!((empirical_mean(&d, 200_000, 5) - 3.0).abs() < 0.05);
        assert!((empirical_var(&d, 200_000, 6) - 4.0).abs() < 0.15);
    }

    #[test]
    fn gamma_moments_shape_above_one() {
        // Gamma(4.2, 0.94): mean 3.948, var alpha*beta^2 = 3.711.
        let d = Gamma::new(4.2, 0.94);
        assert!((empirical_mean(&d, 300_000, 7) - 3.948).abs() < 0.05);
        assert!((empirical_var(&d, 300_000, 8) - 3.711).abs() < 0.2);
    }

    #[test]
    fn gamma_moments_shape_below_one() {
        // Gamma(0.5, 2): mean 1, var 2.
        let d = Gamma::new(0.5, 2.0);
        assert!((empirical_mean(&d, 300_000, 9) - 1.0).abs() < 0.05);
        assert!((empirical_var(&d, 300_000, 10) - 2.0).abs() < 0.25);
    }

    #[test]
    fn gamma_is_positive() {
        let d = Gamma::new(0.3, 1.0);
        let mut rng = Rng::new(11);
        for _ in 0..20_000 {
            assert!(d.sample(&mut rng) > 0.0);
        }
    }

    #[test]
    fn hyper_gamma_mixture_mean() {
        let d = HyperGamma::new(2.0, 1.0, 10.0, 2.0, 0.3);
        // mean = 0.3*2 + 0.7*20 = 14.6
        assert!((empirical_mean(&d, 300_000, 12) - 14.6).abs() < 0.3);
        assert_eq!(d.mean(), Some(0.3 * 2.0 + 0.7 * 20.0));
    }

    #[test]
    fn hyper_gamma_extreme_p_selects_single_component() {
        let d = HyperGamma::new(2.0, 1.0, 100.0, 10.0, 1.0);
        // With p=1 the mean must match the first component (mean 2).
        assert!((empirical_mean(&d, 100_000, 13) - 2.0).abs() < 0.1);
    }

    #[test]
    fn two_stage_uniform_bounds_and_mass() {
        let d = TwoStageUniform::new(1.0, 3.0, 9.0, 0.75);
        let mut rng = Rng::new(14);
        let mut low = 0usize;
        let n = 100_000;
        for _ in 0..n {
            let x = d.sample(&mut rng);
            assert!((1.0..9.0).contains(&x));
            if x < 3.0 {
                low += 1;
            }
        }
        let frac = low as f64 / n as f64;
        assert!((frac - 0.75).abs() < 0.01, "lower-stage mass {frac}");
    }

    #[test]
    fn weibull_shape_one_is_exponential() {
        let d = Weibull::new(1.0, 5.0);
        assert!((empirical_mean(&d, 200_000, 15) - 5.0).abs() < 0.1);
    }

    #[test]
    fn lognormal_median() {
        let d = LogNormal::new(1.0, 0.5);
        let mut rng = Rng::new(16);
        let mut xs: Vec<f64> = (0..100_001).map(|_| d.sample(&mut rng)).collect();
        xs.sort_by(f64::total_cmp);
        let median = xs[50_000];
        assert!((median - 1.0f64.exp()).abs() < 0.1, "median {median}");
    }

    #[test]
    #[should_panic]
    fn gamma_rejects_nonpositive_shape() {
        Gamma::new(0.0, 1.0);
    }

    #[test]
    #[should_panic]
    fn two_stage_rejects_unordered_bounds() {
        TwoStageUniform::new(3.0, 1.0, 9.0, 0.5);
    }
}
