//! Crash-safe file writes.
//!
//! Every durable artifact the workspace produces — run checkpoints,
//! `--out` reports, learned-policy exports, the `BENCH_*.json` trajectory
//! files — goes through [`write_atomic`], so a crash or kill mid-write
//! can never leave a torn file behind: readers see either the complete
//! old contents or the complete new contents, never a prefix.

use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::Path;

/// Write `bytes` to `path` atomically: the data goes to a temporary file
/// in the *same directory* (so the final rename cannot cross filesystems),
/// is fsync'd to stable storage, and is then renamed over `path`. On Unix
/// the parent directory is fsync'd afterwards as well, making the rename
/// itself durable.
///
/// On any error the temporary file is removed (best effort) and `path` is
/// left untouched.
pub fn write_atomic(path: impl AsRef<Path>, bytes: impl AsRef<[u8]>) -> io::Result<()> {
    let path = path.as_ref();
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    let file_name = path
        .file_name()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?;
    let tmp_name = format!(
        ".{}.tmp.{}",
        file_name.to_string_lossy(),
        std::process::id()
    );
    let tmp_path = match dir {
        Some(d) => d.join(&tmp_name),
        None => Path::new(&tmp_name).to_path_buf(),
    };

    let result = (|| {
        let mut tmp = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tmp_path)?;
        tmp.write_all(bytes.as_ref())?;
        tmp.sync_all()?;
        drop(tmp);
        std::fs::rename(&tmp_path, path)?;
        #[cfg(unix)]
        if let Some(d) = dir {
            // Durability of the rename itself: fsync the directory entry.
            // Failure here is not a torn file, so surface it like any
            // other I/O error but with the directory already consistent.
            File::open(d)?.sync_all()?;
        }
        #[cfg(not(unix))]
        let _ = &dir;
        Ok(())
    })();

    if result.is_err() {
        let _ = std::fs::remove_file(&tmp_path);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("dynsched-durable-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn writes_and_replaces() {
        let dir = scratch_dir("basic");
        let path = dir.join("artifact.json");
        write_atomic(&path, b"first").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"first");
        write_atomic(&path, b"second, longer contents").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second, longer contents");
        // No temp droppings left behind.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(
            leftovers.is_empty(),
            "temp files left behind: {leftovers:?}"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn failure_leaves_target_untouched() {
        let dir = scratch_dir("fail");
        let path = dir.join("artifact.json");
        write_atomic(&path, b"original").unwrap();
        // A directory in the way of the rename target's temp file is the
        // easiest portable failure: make the *target* a directory so the
        // rename fails after the temp write.
        let blocked = dir.join("blocked");
        std::fs::create_dir_all(blocked.join("x")).unwrap();
        assert!(write_atomic(&blocked, b"new").is_err());
        assert_eq!(std::fs::read(&path).unwrap(), b"original");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
