//! Generic discrete-event simulation core.
//!
//! [`EventQueue`] is a time-ordered priority queue with deterministic
//! FIFO tie-breaking: events scheduled at the same timestamp pop in the
//! order they were pushed. That determinism matters — the online scheduler
//! processes "arrival" and "completion" events that frequently coincide,
//! and replayability requires a total, insertion-stable order.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Simulation timestamps, in seconds since the start of the simulation.
pub type Time = f64;

/// An event with its scheduled time and insertion sequence number.
#[derive(Debug, Clone)]
struct Scheduled<E> {
    time: Time,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest time pops first,
        // and among equal times the lowest sequence number pops first.
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic, time-ordered event queue.
///
/// # Example
/// ```
/// use dynsched_simkit::events::EventQueue;
///
/// let mut q = EventQueue::new();
/// q.push(5.0, "b");
/// q.push(1.0, "a");
/// q.push(5.0, "c");
/// assert_eq!(q.pop(), Some((1.0, "a")));
/// assert_eq!(q.pop(), Some((5.0, "b"))); // FIFO among ties
/// assert_eq!(q.pop(), Some((5.0, "c")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Create an empty queue with pre-allocated capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            heap: BinaryHeap::with_capacity(capacity),
            next_seq: 0,
        }
    }

    /// Schedule `event` at absolute time `time`.
    ///
    /// # Panics
    /// Panics if `time` is NaN; a NaN timestamp would corrupt the heap order.
    pub fn push(&mut self, time: Time, event: E) {
        assert!(!time.is_nan(), "event time must not be NaN");
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { time, seq, event });
    }

    /// Remove and return the earliest event, if any.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        self.heap.pop().map(|s| (s.time, s.event))
    }

    /// Timestamp of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|s| s.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drop all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }

    /// Drop all pending events *and* restart the FIFO tie-break sequence,
    /// keeping the heap's allocation. This is what makes an [`EventQueue`]
    /// reusable across simulations: after `reset()` the queue behaves
    /// exactly like a freshly constructed one (same pop order for the same
    /// pushes), with no reallocation.
    pub fn reset(&mut self) {
        self.heap.clear();
        self.next_seq = 0;
    }

    /// Make this queue an exact copy of `src` — same pending events, same
    /// pop order (the FIFO tie-break sequence is copied too, so events
    /// pushed after the restore break ties exactly as they would have in
    /// `src`). Reuses this queue's allocation where possible
    /// (`BinaryHeap::clone_from` delegates to the backing `Vec`), so a
    /// warm destination performs no allocation. This is the engine
    /// checkpoint/fork primitive: capture once, restore per fork.
    pub fn restore_from(&mut self, src: &Self)
    where
        E: Clone,
    {
        self.heap.clone_from(&src.heap);
        self.next_seq = src.next_seq;
    }
}

/// A simulation clock that only moves forward.
///
/// Guards against the classic DES bug of processing an event earlier than
/// the current time (which silently reorders causality).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Clock {
    now: Time,
}

impl Clock {
    /// A clock starting at time 0.
    pub fn new() -> Self {
        Self { now: 0.0 }
    }

    /// Current simulation time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Advance to `t`.
    ///
    /// # Panics
    /// Panics if `t` is earlier than the current time (causality violation).
    pub fn advance_to(&mut self, t: Time) {
        assert!(
            t >= self.now,
            "clock moved backwards: now={} requested={}",
            self.now,
            t
        );
        self.now = t;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(3.0, 3);
        q.push(1.0, 1);
        q.push(2.0, 2);
        assert_eq!(q.pop(), Some((1.0, 1)));
        assert_eq!(q.pop(), Some((2.0, 2)));
        assert_eq!(q.pop(), Some((3.0, 3)));
        assert!(q.is_empty());
    }

    #[test]
    fn ties_pop_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(7.0, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((7.0, i)));
        }
    }

    #[test]
    fn interleaved_ties_and_times() {
        let mut q = EventQueue::new();
        q.push(5.0, "t5-first");
        q.push(4.0, "t4");
        q.push(5.0, "t5-second");
        q.push(0.0, "t0");
        assert_eq!(q.pop().unwrap().1, "t0");
        assert_eq!(q.pop().unwrap().1, "t4");
        assert_eq!(q.pop().unwrap().1, "t5-first");
        assert_eq!(q.pop().unwrap().1, "t5-second");
    }

    #[test]
    fn peek_time_matches_pop() {
        let mut q = EventQueue::new();
        q.push(9.0, ());
        q.push(2.5, ());
        assert_eq!(q.peek_time(), Some(2.5));
        q.pop();
        assert_eq!(q.peek_time(), Some(9.0));
    }

    #[test]
    #[should_panic]
    fn rejects_nan_time() {
        let mut q = EventQueue::new();
        q.push(f64::NAN, ());
    }

    #[test]
    fn clock_advances() {
        let mut c = Clock::new();
        c.advance_to(1.0);
        c.advance_to(1.0); // same time allowed
        c.advance_to(5.0);
        assert_eq!(c.now(), 5.0);
    }

    #[test]
    #[should_panic]
    fn clock_rejects_backward_motion() {
        let mut c = Clock::new();
        c.advance_to(5.0);
        c.advance_to(4.0);
    }

    #[test]
    fn restore_from_replays_identically() {
        let mut src = EventQueue::new();
        src.push(5.0, "t5-first");
        src.push(4.0, "t4");
        src.push(5.0, "t5-second");
        src.pop(); // consume t4; the restored copy must not resurrect it
        let mut dst = EventQueue::new();
        dst.push(99.0, "stale"); // must be discarded by the restore
        dst.restore_from(&src);
        // Post-restore pushes continue the FIFO sequence exactly where the
        // source left off: a new same-time event ties *after* the pending
        // ones, just as it would have in `src`.
        dst.push(5.0, "t5-third");
        src.push(5.0, "t5-third");
        assert_eq!(dst.pop(), src.pop());
        assert_eq!(dst.pop(), src.pop());
        assert_eq!(dst.pop(), src.pop());
        assert_eq!(dst.pop(), None);
        assert_eq!(src.pop(), None);
    }

    #[test]
    fn len_tracks_push_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.len(), 0);
        q.push(1.0, ());
        q.push(2.0, ());
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
        q.clear();
        assert!(q.is_empty());
    }
}
