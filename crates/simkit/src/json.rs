//! Hand-rolled JSON with exact-bit `f64` round-tripping.
//!
//! The build environment has no crates.io access and the in-tree `serde`
//! shim is a deliberate no-op, so durable state (run checkpoints, learned
//! policy exports) needs a serializer of its own. This module provides a
//! small JSON value model, a serializer and a parser — no dependencies —
//! with one extension that makes it fit the repo's bit-identity religion:
//!
//! **Every `f64` is emitted as `<decimal>$<hex16>`**, e.g. `0.1$3fb999999999999a`,
//! where the 16 hex digits are [`f64::to_bits`]. On parse the hex bits are
//! authoritative, so NaN payloads, `-0.0`, subnormals and infinities all
//! survive a round trip exactly. For finite values the decimal part (the
//! shortest representation `{:?}` prints, which is itself round-trip exact)
//! is *validated* against the bits — a file whose decimal and hex halves
//! disagree is corrupt and is rejected loudly rather than trusted. The
//! non-finite decimals are the keywords `NaN`, `inf` and `-inf`; they are
//! only accepted with a `$hex16` suffix, so plain-JSON consumers never see
//! bare non-finite tokens without the exact bits alongside.
//!
//! Unsigned integers ([`Json::Uint`]) serialize as bare digits and stay
//! integers on parse; everything without a `$` suffix, sign, fraction or
//! exponent parses as [`Json::Uint`], the rest as [`Json::F64`]. Object
//! member order is preserved (insertion order in, file order out), which
//! keeps serialization deterministic: equal values produce byte-equal
//! text, and byte-equal text hashes to equal [`checksum`]s.

use std::fmt;

/// Maximum nesting depth the parser accepts. Deeper documents are rejected
/// with a parse error instead of overflowing the stack.
pub const MAX_DEPTH: usize = 128;

/// A JSON value. Objects preserve member order; numbers distinguish
/// unsigned integers (exact up to `u64::MAX`) from `f64`s (exact to the
/// bit via the `$hex16` suffix, see the module docs).
#[derive(Debug, Clone)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer, serialized as bare decimal digits.
    Uint(u64),
    /// A double, serialized as `<decimal>$<hex16>` with exact bits.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; member order is preserved and significant for
    /// serialization (but not for [`PartialEq`]).
    Object(Vec<(String, Json)>),
}

impl PartialEq for Json {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Json::Null, Json::Null) => true,
            (Json::Bool(a), Json::Bool(b)) => a == b,
            (Json::Uint(a), Json::Uint(b)) => a == b,
            // Bit equality, not float equality: NaN == NaN (same payload),
            // 0.0 != -0.0. That is the round-trip contract being tested.
            (Json::F64(a), Json::F64(b)) => a.to_bits() == b.to_bits(),
            (Json::Str(a), Json::Str(b)) => a == b,
            (Json::Array(a), Json::Array(b)) => a == b,
            (Json::Object(a), Json::Object(b)) => a == b,
            _ => false,
        }
    }
}

impl Json {
    /// Member lookup on an object (first match wins). `None` for missing
    /// keys and for non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The boolean payload, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The integer payload, if this is a `Uint`.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::Uint(u) => Some(u),
            _ => None,
        }
    }

    /// The double payload, if this is an `F64`. Deliberately strict: an
    /// integer token is *not* silently widened — the writer controls the
    /// format, so a type mismatch means the file is not ours.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::F64(x) => Some(x),
            _ => None,
        }
    }

    /// The string payload, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an `Array`.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The members, if this is an `Object`.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Object(members) => Some(members),
            _ => None,
        }
    }

    /// Serialize to compact JSON text (no whitespace). Deterministic:
    /// equal values produce byte-equal output.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Serialize into an existing buffer.
    pub fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Uint(u) => {
                use fmt::Write;
                write!(out, "{u}").expect("write to String cannot fail");
            }
            Json::F64(x) => write_f64(*x, out),
            Json::Str(s) => write_escaped(s, out),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Object(members) => {
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(key, out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Emit `<decimal>$<hex16>`. The decimal half is `{:?}` — Rust's shortest
/// round-trip-exact representation for finite doubles, and the keywords
/// `NaN` / `inf` / `-inf` otherwise. The hex half is [`f64::to_bits`].
fn write_f64(x: f64, out: &mut String) {
    use fmt::Write;
    write!(out, "{x:?}${:016x}", x.to_bits()).expect("write to String cannot fail");
}

fn write_escaped(s: &str, out: &mut String) {
    use fmt::Write;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                write!(out, "\\u{:04x}", c as u32).expect("write to String cannot fail");
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: byte offset into the input plus a human-readable
/// reason. The offset points at (or just past) the offending token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input where parsing failed.
    pub pos: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json parse error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parse a complete JSON document (one value plus optional surrounding
/// whitespace; trailing garbage is an error). See the module docs for the
/// exact-bit number extension.
pub fn parse(text: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing garbage after the document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            pos: self.pos,
            msg: msg.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn eat_keyword(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err(format!("nesting deeper than {MAX_DEPTH} levels")));
        }
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') if self.eat_keyword("true") => Ok(Json::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Json::Bool(false)),
            Some(b'n') if self.eat_keyword("null") => Ok(Json::Null),
            Some(b'-' | b'0'..=b'9') | Some(b'N') | Some(b'i') => self.number(),
            Some(c) => Err(self.err(format!("unexpected character '{}'", c as char))),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.eat(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy a run of plain bytes in one go.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                // Safety of from_utf8: the input is a &str, and the run we
                // sliced stops before any ASCII special, so it stays on
                // UTF-8 boundaries.
                out.push_str(
                    std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8 inside string"))?,
                );
            }
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    out.push(self.escape()?);
                }
                Some(_) => return Err(self.err("raw control character inside string")),
            }
        }
    }

    fn escape(&mut self) -> Result<char, ParseError> {
        let c = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
        self.pos += 1;
        Ok(match c {
            b'"' => '"',
            b'\\' => '\\',
            b'/' => '/',
            b'b' => '\u{0008}',
            b'f' => '\u{000C}',
            b'n' => '\n',
            b'r' => '\r',
            b't' => '\t',
            b'u' => {
                let hi = self.hex4()?;
                if (0xD800..0xDC00).contains(&hi) {
                    // High surrogate: a low surrogate must follow.
                    if !(self.eat(b'\\').is_ok() && self.eat(b'u').is_ok()) {
                        return Err(self.err("high surrogate without a low surrogate"));
                    }
                    let lo = self.hex4()?;
                    if !(0xDC00..0xE000).contains(&lo) {
                        return Err(self.err("invalid low surrogate"));
                    }
                    let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                    char::from_u32(code).ok_or_else(|| self.err("invalid surrogate pair"))?
                } else if (0xDC00..0xE000).contains(&hi) {
                    return Err(self.err("unpaired low surrogate"));
                } else {
                    char::from_u32(hi).ok_or_else(|| self.err("invalid \\u escape"))?
                }
            }
            c => return Err(self.err(format!("invalid escape '\\{}'", c as char))),
        })
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut value = 0u32;
        for _ in 0..4 {
            let d = self
                .peek()
                .and_then(|b| (b as char).to_digit(16))
                .ok_or_else(|| self.err("expected 4 hex digits after \\u"))?;
            self.pos += 1;
            value = (value << 4) | d;
        }
        Ok(value)
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        // Decimal half: a finite JSON number, or the non-finite keywords.
        let non_finite = if self.eat_keyword("NaN") {
            Some(f64::NAN)
        } else if self.eat_keyword("inf") {
            Some(f64::INFINITY)
        } else if self.eat_keyword("-inf") {
            Some(f64::NEG_INFINITY)
        } else {
            if self.peek() == Some(b'-') {
                self.pos += 1;
            }
            let digits_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == digits_start {
                return Err(self.err("expected digits in number"));
            }
            if self.bytes[digits_start] == b'0' && self.pos - digits_start > 1 {
                return Err(self.err("leading zeros are not allowed"));
            }
            if self.peek() == Some(b'.') {
                self.pos += 1;
                let frac_start = self.pos;
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
                if self.pos == frac_start {
                    return Err(self.err("expected digits after decimal point"));
                }
            }
            if matches!(self.peek(), Some(b'e' | b'E')) {
                self.pos += 1;
                if matches!(self.peek(), Some(b'+' | b'-')) {
                    self.pos += 1;
                }
                let exp_start = self.pos;
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
                if self.pos == exp_start {
                    return Err(self.err("expected digits in exponent"));
                }
            }
            None
        };
        let decimal =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number tokens are ASCII");

        if self.peek() == Some(b'$') {
            // Exact-bit half: 16 hex digits, authoritative.
            self.pos += 1;
            let hex_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9' | b'a'..=b'f' | b'A'..=b'F')) {
                self.pos += 1;
            }
            let hex = &self.bytes[hex_start..self.pos];
            if hex.len() != 16 {
                return Err(self.err("expected exactly 16 hex digits after '$'"));
            }
            let bits =
                u64::from_str_radix(std::str::from_utf8(hex).expect("hex digits are ASCII"), 16)
                    .expect("16 hex digits fit in u64");
            let value = f64::from_bits(bits);
            // The two halves must agree — a mismatch means the file was
            // edited or corrupted, and we refuse to guess which half to
            // believe.
            let consistent = match non_finite {
                Some(nf) if nf.is_nan() => value.is_nan(),
                Some(nf) => value == nf,
                None => decimal.parse::<f64>().ok().map(f64::to_bits) == Some(bits),
            };
            if !consistent {
                return Err(self.err(format!(
                    "number '{decimal}' does not match its exact bits {bits:016x}"
                )));
            }
            return Ok(Json::F64(value));
        }

        // No exact-bit half: plain JSON. Non-finite keywords are only
        // valid with their bits attached.
        if non_finite.is_some() {
            return Err(self.err("non-finite number requires '$<hex16>' exact bits"));
        }
        if !decimal.contains(['.', 'e', 'E', '-']) {
            if let Ok(u) = decimal.parse::<u64>() {
                return Ok(Json::Uint(u));
            }
        }
        decimal
            .parse::<f64>()
            .map(Json::F64)
            .map_err(|_| self.err(format!("invalid number '{decimal}'")))
    }
}

/// FNV-1a 64-bit hash. Used as the payload checksum and config fingerprint
/// in checkpoint files: not cryptographic, but plenty to detect the torn
/// writes and bit rot the resume path guards against.
pub fn checksum(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: &Json) -> Json {
        parse(&v.to_text()).expect("round trip parses")
    }

    #[test]
    fn scalars_roundtrip() {
        for v in [
            Json::Null,
            Json::Bool(true),
            Json::Bool(false),
            Json::Uint(0),
            Json::Uint(u64::MAX),
            Json::F64(0.1),
            Json::F64(-0.0),
            Json::F64(f64::NAN),
            Json::F64(f64::INFINITY),
            Json::F64(f64::NEG_INFINITY),
            Json::F64(f64::MIN_POSITIVE / 2.0), // subnormal
            Json::Str("hé\"llo\n\\\u{1F600}".into()),
        ] {
            assert_eq!(roundtrip(&v), v, "value {v:?}");
        }
    }

    #[test]
    fn f64_text_is_decimal_and_bits() {
        assert_eq!(Json::F64(1.5).to_text(), "1.5$3ff8000000000000");
        assert_eq!(Json::F64(-0.0).to_text(), "-0.0$8000000000000000");
        assert_eq!(Json::F64(f64::INFINITY).to_text(), "inf$7ff0000000000000");
    }

    #[test]
    fn containers_roundtrip_and_preserve_order() {
        let v = Json::Object(vec![
            ("z".into(), Json::Array(vec![Json::Uint(1), Json::Null])),
            ("a".into(), Json::F64(2.5)),
        ]);
        let text = v.to_text();
        assert!(text.find("\"z\"").unwrap() < text.find("\"a\"").unwrap());
        assert_eq!(roundtrip(&v), v);
    }

    #[test]
    fn plain_json_is_accepted() {
        let v = parse(" { \"a\" : [ 1 , -2.5e3 , true ] } ").unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap()[0], Json::Uint(1));
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[1],
            Json::F64(-2500.0)
        );
    }

    #[test]
    fn mismatched_bits_are_rejected() {
        assert!(parse("1.5$3ff8000000000001").is_err());
        assert!(parse("2.5$deadbeef").is_err()); // wrong hex length
        assert!(parse("NaN").is_err()); // bare non-finite
    }

    #[test]
    fn malformed_documents_are_rejected() {
        for bad in [
            "",
            "{",
            "[1,",
            "[1 2]",
            "{\"a\"}",
            "\"\\q\"",
            "tru",
            "1.5 x",
            "01",
            "\"\\ud800\"",
            "nul",
            "[",
            "]",
        ] {
            assert!(parse(bad).is_err(), "input {bad:?} should fail");
        }
    }

    #[test]
    fn checksum_is_stable() {
        // FNV-1a reference vector.
        assert_eq!(checksum(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(checksum(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
