//! # dynsched-simkit
//!
//! Discrete-event simulation substrate for the `dynsched` reproduction of
//! Carastan-Santos & de Camargo, *"Obtaining Dynamic Scheduling Policies with
//! Simulation and Machine Learning"* (SC'17).
//!
//! The paper runs its experiments on SimGrid; this crate provides the
//! equivalent foundations from scratch:
//!
//! * [`rng`] — deterministic, fork-able pseudo-random streams
//!   (xoshiro256++ seeded via SplitMix64);
//! * [`dist`] — the distributions needed by the Lublin–Feitelson and
//!   Tsafrir workload models (gamma, hyper-gamma, two-stage uniform, …);
//! * [`events`] — a time-ordered event queue with deterministic FIFO
//!   tie-breaking and a monotonic simulation clock;
//! * [`stats`] — descriptive statistics (median/quantiles/boxplot
//!   summaries/Welford accumulators) used by the evaluation harness;
//! * [`parallel`] — rayon-based deterministic fan-out for the
//!   hundreds of thousands of independent training trials.
//!
//! Everything is deterministic given a master seed, including under
//! parallel execution (streams are derived from trial indices, not threads).

#![warn(missing_docs)]

pub mod dist;
pub mod events;
pub mod parallel;
pub mod quantile;
pub mod rng;
pub mod stats;

pub use events::{Clock, EventQueue, Time};
pub use rng::Rng;
