//! # dynsched-simkit
//!
//! Discrete-event simulation substrate for the `dynsched` reproduction of
//! Carastan-Santos & de Camargo, *"Obtaining Dynamic Scheduling Policies with
//! Simulation and Machine Learning"* (SC'17).
//!
//! The paper runs its experiments on SimGrid; this crate provides the
//! equivalent foundations from scratch:
//!
//! * [`rng`] — deterministic, fork-able pseudo-random streams
//!   (xoshiro256++ seeded via SplitMix64);
//! * [`dist`] — the distributions needed by the Lublin–Feitelson and
//!   Tsafrir workload models (gamma, hyper-gamma, two-stage uniform, …);
//! * [`events`] — a time-ordered event queue with deterministic FIFO
//!   tie-breaking and a monotonic simulation clock;
//! * [`stats`] — descriptive statistics (median/quantiles/boxplot
//!   summaries/Welford accumulators) used by the evaluation harness;
//! * [`parallel`] — deterministic fan-out for the hundreds of thousands of
//!   independent training trials, on an in-tree scoped thread pool;
//! * [`json`] — hand-rolled JSON (no deps) with exact-bit `f64`
//!   round-tripping, the substrate for durable run state;
//! * [`durable`] — [`durable::write_atomic`]: same-directory temp file +
//!   fsync + rename, so no artifact is ever torn by a crash.
//!
//! # Durability contract
//!
//! Persisted state follows two rules. **Atomicity**: every durable file is
//! written via [`durable::write_atomic`] — readers observe either the old
//! or the new contents in full, never a torn prefix. **Exactness**: doubles
//! are serialized by [`json`] as `<decimal>$<hex16>` ([`f64::to_bits`]
//! alongside the shortest decimal), so state that round-trips through disk
//! is bit-identical to state that never left memory — NaN payloads,
//! `-0.0`, subnormals and infinities included. Parsers validate that the
//! two halves agree and reject the file as corrupt otherwise.
//!
//! # Panic isolation
//!
//! A panic inside a worker closure does not abort the fan-out scope or
//! leak completed slots: the supervised drivers
//! ([`parallel::try_run_scoped`] and friends) catch the unwind, stop the
//! remaining workers, join the scope cleanly and return a structured
//! [`parallel::PoolError`] naming the failing slot. The panicking drivers
//! (`run_scoped`, `run_indexed`, …) keep their historical semantics by
//! re-raising the original payload after the clean join.
//!
//! # Determinism contract
//!
//! Everything is deterministic given a master seed, including under
//! parallel execution. The rule that makes this hold is: **every randomized
//! task derives its RNG stream from `(master seed, task index)`** via
//! [`Rng::fork`] — never from thread identity, wall-clock, or any shared
//! mutable state. The parallel drivers additionally guarantee index-ordered
//! output, so `run_indexed(master, n, f)` equals the sequential
//! `(0..n).map(|i| f(i, &mut master.fork(i)))` bit for bit at any thread
//! count. [`parallel::run_indexed_scoped`] extends the contract to
//! worker-local *scratch* state (e.g. a reusable simulation workspace):
//! the state may carry heap capacity between tasks, but must never carry
//! information — closures reset it before use.

#![warn(missing_docs)]

pub mod dist;
pub mod durable;
pub mod events;
pub mod json;
pub mod parallel;
pub mod quantile;
pub mod rng;
pub mod stats;

pub use events::{Clock, EventQueue, Time};
pub use rng::Rng;
