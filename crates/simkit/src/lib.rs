//! # dynsched-simkit
//!
//! Discrete-event simulation substrate for the `dynsched` reproduction of
//! Carastan-Santos & de Camargo, *"Obtaining Dynamic Scheduling Policies with
//! Simulation and Machine Learning"* (SC'17).
//!
//! The paper runs its experiments on SimGrid; this crate provides the
//! equivalent foundations from scratch:
//!
//! * [`rng`] — deterministic, fork-able pseudo-random streams
//!   (xoshiro256++ seeded via SplitMix64);
//! * [`dist`] — the distributions needed by the Lublin–Feitelson and
//!   Tsafrir workload models (gamma, hyper-gamma, two-stage uniform, …);
//! * [`events`] — a time-ordered event queue with deterministic FIFO
//!   tie-breaking and a monotonic simulation clock;
//! * [`stats`] — descriptive statistics (median/quantiles/boxplot
//!   summaries/Welford accumulators) used by the evaluation harness;
//! * [`parallel`] — deterministic fan-out for the hundreds of thousands of
//!   independent training trials, on an in-tree scoped thread pool.
//!
//! # Determinism contract
//!
//! Everything is deterministic given a master seed, including under
//! parallel execution. The rule that makes this hold is: **every randomized
//! task derives its RNG stream from `(master seed, task index)`** via
//! [`Rng::fork`] — never from thread identity, wall-clock, or any shared
//! mutable state. The parallel drivers additionally guarantee index-ordered
//! output, so `run_indexed(master, n, f)` equals the sequential
//! `(0..n).map(|i| f(i, &mut master.fork(i)))` bit for bit at any thread
//! count. [`parallel::run_indexed_scoped`] extends the contract to
//! worker-local *scratch* state (e.g. a reusable simulation workspace):
//! the state may carry heap capacity between tasks, but must never carry
//! information — closures reset it before use.

#![warn(missing_docs)]

pub mod dist;
pub mod events;
pub mod parallel;
pub mod quantile;
pub mod rng;
pub mod stats;

pub use events::{Clock, EventQueue, Time};
pub use rng::Rng;
