//! Deterministic data-parallel experiment driving.
//!
//! The training stage of the paper runs hundreds of thousands of independent
//! trial simulations. We fan them out over an in-tree scoped thread pool
//! (`std::thread::scope` + an atomic work counter; the build environment has
//! no crates.io access, so no rayon), but keep results bit-identical to a
//! sequential run by deriving each task's RNG stream from
//! `(master seed, task index)` — never from thread identity.
//!
//! # Determinism contract
//!
//! Every driver here guarantees: output slot `i` depends only on the master
//! seed and `i`, and the returned vector is ordered by index. Worker threads
//! claim contiguous chunks of indices dynamically, so scheduling varies run
//! to run — but since no per-task state leaks between indices (worker-local
//! state handed out by [`run_indexed_scoped`] must be *reset* by the closure,
//! never read), results do not.

use crate::rng::Rng;
use std::any::Any;
use std::cell::Cell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

thread_local! {
    static WORKER_LIMIT: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Run `f` with every fan-out on *this* thread capped at `limit` worker
/// threads. Exists so tests can prove results are identical at any pool
/// width; production code should let the drivers size themselves.
pub fn with_worker_limit<R>(limit: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            WORKER_LIMIT.with(|c| c.set(self.0));
        }
    }
    // Restore on unwind too: a panicking closure (an assertion in a test)
    // must not pin this thread to the override for later callers.
    let _restore = Restore(WORKER_LIMIT.with(|c| c.replace(Some(limit.max(1)))));
    f()
}

/// Number of worker threads for `count` tasks.
fn worker_count(count: usize) -> usize {
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    WORKER_LIMIT.with(Cell::get).unwrap_or(hw).min(count).max(1)
}

/// Worker threads a large fan-out would use on this thread right now: the
/// host's available parallelism, or the [`with_worker_limit`] override if
/// one is active. Purely informational (the benches record it next to
/// their throughput numbers so cross-machine trajectories stay
/// comparable); results never depend on it — that is the determinism
/// contract above.
pub fn max_workers() -> usize {
    worker_count(usize::MAX)
}

/// Shareable raw pointer to the output buffer. Safety: workers write
/// disjoint index ranges (each index is claimed by exactly one chunk).
struct OutPtr<T>(*mut T);
unsafe impl<T: Send> Send for OutPtr<T> {}
unsafe impl<T: Send> Sync for OutPtr<T> {}

/// A worker closure panicked inside a supervised fan-out. The pool caught
/// the unwind, stopped the remaining workers, joined the scope cleanly
/// and dropped every already-completed slot — no leaks, no abort.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolError {
    /// The task index whose closure panicked, or [`usize::MAX`] if a
    /// worker panicked while building its per-worker state (`init`).
    pub slot: usize,
    /// The panic payload, stringified (`&str` / `String` payloads verbatim;
    /// anything else is summarized).
    pub message: String,
}

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.slot == usize::MAX {
            write!(
                f,
                "worker panicked while building its state: {}",
                self.message
            )
        } else {
            write!(f, "worker panicked at slot {}: {}", self.slot, self.message)
        }
    }
}

impl std::error::Error for PoolError {}

/// `(failing slot, original panic payload)` — kept as the payload so the
/// panicking drivers can re-raise it unchanged.
type PanicAt = (usize, Box<dyn Any + Send>);

impl PoolError {
    fn from_panic((slot, payload): PanicAt) -> Self {
        let message = if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "non-string panic payload".to_string()
        };
        PoolError { slot, message }
    }
}

/// Record the first panic and tell every worker to stop claiming work.
/// When several workers panic concurrently, which one is "first" depends
/// on scheduling — acceptable, since any panic already makes the run a
/// failed one.
fn record_panic(
    stop: &AtomicBool,
    failure: &Mutex<Option<PanicAt>>,
    slot: usize,
    payload: Box<dyn Any + Send>,
) {
    stop.store(true, Ordering::Relaxed);
    let mut guard = match failure.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    if guard.is_none() {
        *guard = Some((slot, payload));
    }
}

/// Core fan-out: run `f(index, &mut worker_state)` for every index in
/// `0..count` on a scoped thread pool, collecting results in index order.
/// `init` is called once per worker thread to build its reusable state.
///
/// Supervision: each closure invocation runs under [`catch_unwind`]. On
/// the first panic the remaining workers stop claiming chunks, the scope
/// joins cleanly, every slot completed so far is dropped (the output
/// buffer is a fully initialized `Vec<Option<T>>`, so unwinding cannot
/// leak), and the original payload comes back as `Err`. The
/// [`AssertUnwindSafe`] is sound because on failure both the worker state
/// and all partial output are discarded, never observed.
fn fan_out_supervised<T, S, I, F>(count: usize, init: I, f: F) -> Result<Vec<T>, PanicAt>
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(usize, &mut S) -> T + Sync,
{
    if count == 0 {
        return Ok(Vec::new());
    }
    let workers = worker_count(count);
    if workers == 1 {
        let mut state = catch_unwind(AssertUnwindSafe(&init)).map_err(|p| (usize::MAX, p))?;
        let mut out = Vec::with_capacity(count);
        for i in 0..count {
            match catch_unwind(AssertUnwindSafe(|| f(i, &mut state))) {
                Ok(value) => out.push(value),
                Err(payload) => return Err((i, payload)),
            }
        }
        return Ok(out);
    }

    let mut out: Vec<Option<T>> = (0..count).map(|_| None).collect();
    // Chunks small enough to balance uneven task costs, large enough to
    // keep the atomic counter cold.
    let chunk = (count / (workers * 8)).max(1);
    let next = AtomicUsize::new(0);
    let stop = AtomicBool::new(false);
    let failure: Mutex<Option<PanicAt>> = Mutex::new(None);
    let out_ptr = OutPtr(out.as_mut_ptr());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let out_ptr = &out_ptr;
                let mut state = match catch_unwind(AssertUnwindSafe(&init)) {
                    Ok(state) => state,
                    Err(payload) => {
                        record_panic(&stop, &failure, usize::MAX, payload);
                        return;
                    }
                };
                while !stop.load(Ordering::Relaxed) {
                    let start = next.fetch_add(chunk, Ordering::Relaxed);
                    if start >= count {
                        break;
                    }
                    let end = (start + chunk).min(count);
                    for i in start..end {
                        if stop.load(Ordering::Relaxed) {
                            return;
                        }
                        match catch_unwind(AssertUnwindSafe(|| f(i, &mut state))) {
                            // Safety: index `i` belongs to exactly one
                            // claimed chunk, so this write is race-free;
                            // the slot is inside the fully initialized
                            // buffer and currently `None`, so the implied
                            // drop of the old value is trivial.
                            Ok(value) => unsafe { *out_ptr.0.add(i) = Some(value) },
                            Err(payload) => {
                                record_panic(&stop, &failure, i, payload);
                                return;
                            }
                        }
                    }
                }
            });
        }
    });
    let failed = match failure.into_inner() {
        Ok(inner) => inner,
        Err(poisoned) => poisoned.into_inner(),
    };
    if let Some(panic_at) = failed {
        return Err(panic_at);
    }
    // The scope joined every worker and none panicked, so together they
    // filled every slot in 0..count exactly once; the join gives the
    // happens-before edge that makes the writes visible here.
    Ok(out
        .into_iter()
        .map(|slot| slot.expect("joined scope left a slot unfilled"))
        .collect())
}

/// Panicking shell around [`fan_out_supervised`]: historical behaviour
/// for the in-tree drivers — the first worker panic is re-raised on the
/// caller thread after a clean join (and, since the supervised rewrite,
/// without leaking completed slots).
fn fan_out<T, S, I, F>(count: usize, init: I, f: F) -> Vec<T>
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(usize, &mut S) -> T + Sync,
{
    match fan_out_supervised(count, init, f) {
        Ok(out) => out,
        Err((_slot, payload)) => resume_unwind(payload),
    }
}

/// Supervised twin of [`run_scoped`]: same determinism contract, but a
/// panicking closure yields `Err(`[`PoolError`]`)` — naming the failing
/// slot and carrying the stringified payload — instead of unwinding
/// through the caller. Completed slots are dropped, not leaked, and the
/// thread scope joins cleanly either way.
pub fn try_run_scoped<T, S, I, F>(count: usize, init: I, f: F) -> Result<Vec<T>, PoolError>
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(usize, &mut S) -> T + Sync,
{
    fan_out_supervised(count, init, f).map_err(PoolError::from_panic)
}

/// Supervised twin of [`run_indexed_scoped`]: forked-RNG fan-out that
/// returns a structured [`PoolError`] instead of re-raising a worker
/// panic. Same scratch and determinism contract.
pub fn try_run_indexed_scoped<T, S, I, F>(
    master: &Rng,
    count: usize,
    init: I,
    f: F,
) -> Result<Vec<T>, PoolError>
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(usize, &mut Rng, &mut S) -> T + Sync,
{
    try_run_scoped(count, init, |i, state| {
        let mut rng = master.fork(i as u64);
        f(i, &mut rng, state)
    })
}

/// Deterministic scoped fan-out without RNG: run `f(i, &mut state)` for
/// every `i` in `0..count` on the pool, collecting results in index order.
/// `init` builds one reusable state per worker thread (the evaluation
/// session hands each worker a simulation workspace this way). The scratch
/// contract of [`run_indexed_scoped`] applies: `f` must fully reset the
/// state before use, so slot `i` depends only on `i`.
pub fn run_scoped<T, S, I, F>(count: usize, init: I, f: F) -> Vec<T>
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(usize, &mut S) -> T + Sync,
{
    fan_out(count, init, f)
}

/// Like [`par_map`], but hands each worker thread a reusable state built by
/// `init` — the batched evaluation session uses this to give every worker
/// one simulation workspace that is cleared, not reallocated, between the
/// cells it executes. Same scratch contract as [`run_indexed_scoped`].
pub fn par_map_scoped<T, U, S, I, F>(items: &[T], init: I, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    I: Fn() -> S + Sync,
    F: Fn(&T, &mut S) -> U + Sync,
{
    fan_out(items.len(), init, |i, state| f(&items[i], state))
}

/// Run `count` independent jobs in parallel, each with its own forked RNG.
///
/// `f(index, rng)` is invoked once per index in `0..count`; the output vector
/// is ordered by index. Results are independent of thread scheduling,
/// because stream `i` depends only on `master.seed()` and `i`.
///
/// # Example
/// ```
/// use dynsched_simkit::rng::Rng;
/// use dynsched_simkit::parallel::run_indexed;
///
/// let master = Rng::new(42);
/// let par = run_indexed(&master, 64, |i, rng| (i, rng.next_u64()));
/// let seq: Vec<_> = (0..64u64).map(|i| (i as usize, master.fork(i).next_u64())).collect();
/// assert_eq!(par, seq);
/// ```
pub fn run_indexed<T, F>(master: &Rng, count: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, &mut Rng) -> T + Sync,
{
    run_indexed_scoped(master, count, || (), |i, rng, ()| f(i, rng))
}

/// Like [`run_indexed`], but hands each worker thread a reusable state
/// built by `init` — the hook the batched trial kernel uses to give every
/// worker one simulation workspace that is cleared, not reallocated,
/// between trials.
///
/// Determinism: `state` is worker-local and survives across the indices a
/// worker happens to process, so `f` must treat it as *scratch* — fully
/// reset before use, never read to influence the result. Under that
/// contract the output for index `i` still depends only on
/// `(master.seed(), i)` and is bit-identical for any thread count.
pub fn run_indexed_scoped<T, S, I, F>(master: &Rng, count: usize, init: I, f: F) -> Vec<T>
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(usize, &mut Rng, &mut S) -> T + Sync,
{
    fan_out(count, init, |i, state| {
        let mut rng = master.fork(i as u64);
        f(i, &mut rng, state)
    })
}

/// Parallel map over a slice, output in input order. No RNG involved; for
/// deterministic randomized work use [`run_indexed`] / [`map_items`].
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    fan_out(items.len(), || (), |i, ()| f(&items[i]))
}

/// Like [`run_indexed`], but folds results into `workers` partial
/// accumulators (one per contiguous index range) and reduces them
/// left-to-right. Deterministic for *associative* operations; for
/// floating-point sums — which are not associative — the partial split
/// still depends on the worker count, so when bit-exact reproducibility
/// across machines matters, prefer [`run_indexed`] followed by a
/// sequential fold, as the training pipeline does.
pub fn run_indexed_reduce<A, F, R, I>(
    master: &Rng,
    count: usize,
    identity: I,
    fold: F,
    reduce: R,
) -> A
where
    A: Send,
    I: Fn() -> A + Sync + Send,
    F: Fn(A, usize, &mut Rng) -> A + Sync,
    R: Fn(A, A) -> A + Sync + Send,
{
    if count == 0 {
        return identity();
    }
    let workers = worker_count(count);
    let per = count.div_ceil(workers);
    let partials: Vec<A> = par_map(
        &(0..workers)
            .map(|w| (w * per, ((w + 1) * per).min(count)))
            .collect::<Vec<_>>(),
        |&(start, end)| {
            let mut acc = identity();
            for i in start..end {
                let mut rng = master.fork(i as u64);
                acc = fold(acc, i, &mut rng);
            }
            acc
        },
    );
    partials.into_iter().fold(identity(), reduce)
}

/// Run a job per element of `items`, in parallel, each with a forked stream.
pub fn map_items<T, U, F>(master: &Rng, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T, usize, &mut Rng) -> U + Sync,
{
    run_indexed(master, items.len(), |i, rng| f(&items[i], i, rng))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::Welford;

    #[test]
    fn run_indexed_matches_sequential() {
        let master = Rng::new(7);
        let par = run_indexed(&master, 257, |i, rng| i as u64 ^ rng.next_u64());
        let seq: Vec<u64> = (0..257u64).map(|i| i ^ master.fork(i).next_u64()).collect();
        assert_eq!(par, seq);
    }

    #[test]
    fn run_indexed_is_repeatable() {
        let master = Rng::new(13);
        let a = run_indexed(&master, 100, |_, rng| rng.next_f64());
        let b = run_indexed(&master, 100, |_, rng| rng.next_f64());
        assert_eq!(a, b);
    }

    #[test]
    fn scoped_state_is_reusable_scratch() {
        // The worker-local buffer is cleared per task; results must be as if
        // each task had a fresh one.
        let master = Rng::new(99);
        let got = run_indexed_scoped(&master, 500, Vec::<u64>::new, |i, rng, buf| {
            buf.clear();
            buf.extend((0..4).map(|_| rng.next_u64()));
            buf.iter().fold(i as u64, |a, &x| a.wrapping_add(x))
        });
        let want: Vec<u64> = (0..500u64)
            .map(|i| {
                let mut rng = master.fork(i);
                (0..4).fold(i, |a, _| a.wrapping_add(rng.next_u64()))
            })
            .collect();
        assert_eq!(got, want);
    }

    #[test]
    fn run_scoped_matches_sequential() {
        let got = run_scoped(321, Vec::<usize>::new, |i, buf| {
            buf.clear();
            buf.extend(0..i % 5);
            i * 3 + buf.len()
        });
        let want: Vec<usize> = (0..321).map(|i| i * 3 + i % 5).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn par_map_scoped_is_thread_count_independent() {
        let items: Vec<u64> = (0..400).collect();
        let eval = || {
            par_map_scoped(
                &items,
                || 0u64,
                |&x, scratch| {
                    *scratch = x; // reset, then use
                    *scratch * 2 + 1
                },
            )
        };
        let wide = eval();
        let narrow = with_worker_limit(1, eval);
        assert_eq!(wide, narrow);
        assert_eq!(wide[7], 15);
    }

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<i64> = (0..1000).collect();
        let out = par_map(&items, |&x| x * 2);
        assert_eq!(out, items.iter().map(|&x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn reduce_welford_matches_vector_path() {
        let master = Rng::new(21);
        let samples = run_indexed(&master, 10_000, |_, rng| rng.next_f64());
        let mut expect = Welford::new();
        for &s in &samples {
            expect.push(s);
        }
        let got = run_indexed_reduce(
            &master,
            10_000,
            Welford::new,
            |mut acc, _, rng| {
                acc.push(rng.next_f64());
                acc
            },
            |mut a, b| {
                a.merge(&b);
                a
            },
        );
        assert_eq!(got.count(), expect.count());
        assert!((got.mean() - expect.mean()).abs() < 1e-12);
    }

    #[test]
    fn map_items_preserves_order() {
        let master = Rng::new(3);
        let items: Vec<i32> = (0..50).collect();
        let out = map_items(&master, &items, |&x, i, _| (x, i));
        for (k, &(x, i)) in out.iter().enumerate() {
            assert_eq!(x as usize, k);
            assert_eq!(i, k);
        }
    }

    #[test]
    fn zero_count_is_fine() {
        let master = Rng::new(9);
        let out: Vec<u64> = run_indexed(&master, 0, |_, rng| rng.next_u64());
        assert!(out.is_empty());
        let empty: Vec<u8> = par_map(&[] as &[u8], |&b| b);
        assert!(empty.is_empty());
    }

    #[test]
    fn try_run_scoped_matches_run_scoped_on_success() {
        let ok = try_run_scoped(321, Vec::<usize>::new, |i, buf| {
            buf.clear();
            buf.extend(0..i % 5);
            i * 3 + buf.len()
        })
        .unwrap();
        let plain = run_scoped(321, Vec::<usize>::new, |i, buf| {
            buf.clear();
            buf.extend(0..i % 5);
            i * 3 + buf.len()
        });
        assert_eq!(ok, plain);
    }

    #[test]
    fn panicking_slot_yields_structured_error_at_any_width() {
        let eval = || {
            try_run_scoped(
                200,
                || (),
                |i, ()| {
                    if i == 57 {
                        panic!("slot {i} exploded");
                    }
                    i
                },
            )
        };
        for err in [
            eval().unwrap_err(),
            with_worker_limit(1, eval).unwrap_err(),
            with_worker_limit(4, eval).unwrap_err(),
        ] {
            assert_eq!(err.slot, 57);
            assert_eq!(err.message, "slot 57 exploded");
            assert!(err.to_string().contains("slot 57"));
        }
    }

    #[test]
    fn panicking_init_is_reported() {
        let err =
            try_run_scoped(8, || -> () { panic!("no state for you") }, |i, ()| i).unwrap_err();
        assert_eq!(err.slot, usize::MAX);
        assert_eq!(err.message, "no state for you");
    }

    #[test]
    fn try_run_indexed_scoped_matches_run_indexed() {
        let master = Rng::new(7);
        let ok =
            try_run_indexed_scoped(&master, 257, || (), |i, rng, ()| i as u64 ^ rng.next_u64())
                .unwrap();
        let plain = run_indexed(&master, 257, |i, rng| i as u64 ^ rng.next_u64());
        assert_eq!(ok, plain);
    }

    #[test]
    fn completed_slots_are_dropped_not_leaked_on_panic() {
        use std::sync::atomic::AtomicUsize;
        use std::sync::Arc;

        #[derive(Debug)]
        struct Tracked(Arc<AtomicUsize>);
        impl Drop for Tracked {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }

        let built = Arc::new(AtomicUsize::new(0));
        let dropped = Arc::new(AtomicUsize::new(0));
        let err = try_run_scoped(
            500,
            || (),
            |i, ()| {
                if i == 250 {
                    panic!("boom");
                }
                built.fetch_add(1, Ordering::SeqCst);
                Tracked(Arc::clone(&dropped))
            },
        )
        .unwrap_err();
        assert_eq!(err.slot, 250);
        // Every value that was constructed must have been dropped when the
        // fan-out bailed out — the old implementation leaked them.
        assert_eq!(built.load(Ordering::SeqCst), dropped.load(Ordering::SeqCst));
        assert!(
            built.load(Ordering::SeqCst) > 0,
            "some slots should complete"
        );
    }

    #[test]
    fn plain_drivers_still_unwind_with_the_original_payload() {
        let caught = std::panic::catch_unwind(|| {
            run_scoped(
                64,
                || (),
                |i, ()| {
                    if i == 3 {
                        panic!("original payload");
                    }
                    i
                },
            )
        })
        .unwrap_err();
        assert_eq!(
            caught.downcast_ref::<&str>().copied(),
            Some("original payload")
        );
    }

    #[test]
    fn non_copy_results_survive_the_unsafe_collection() {
        let master = Rng::new(31);
        let out = run_indexed(&master, 300, |i, rng| format!("{i}:{}", rng.next_u64()));
        for (i, s) in out.iter().enumerate() {
            assert!(s.starts_with(&format!("{i}:")));
        }
    }
}
