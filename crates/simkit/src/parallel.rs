//! Deterministic data-parallel experiment driving.
//!
//! The training stage of the paper runs hundreds of thousands of independent
//! trial simulations. We parallelise them with rayon, but keep results
//! bit-identical to a sequential run by deriving each trial's RNG stream
//! from `(master seed, trial index)` — never from thread identity.

use crate::rng::Rng;
use rayon::prelude::*;

/// Run `count` independent jobs in parallel, each with its own forked RNG.
///
/// `f(index, rng)` is invoked once per index in `0..count`; the output vector
/// is ordered by index. Results are independent of the rayon thread pool's
/// scheduling, because stream `i` depends only on `master.seed()` and `i`.
///
/// # Example
/// ```
/// use dynsched_simkit::rng::Rng;
/// use dynsched_simkit::parallel::run_indexed;
///
/// let master = Rng::new(42);
/// let par = run_indexed(&master, 64, |i, rng| (i, rng.next_u64()));
/// let seq: Vec<_> = (0..64u64).map(|i| (i as usize, master.fork(i).next_u64())).collect();
/// assert_eq!(par, seq);
/// ```
pub fn run_indexed<T, F>(master: &Rng, count: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, &mut Rng) -> T + Sync,
{
    (0..count)
        .into_par_iter()
        .map(|i| {
            let mut rng = master.fork(i as u64);
            f(i, &mut rng)
        })
        .collect()
}

/// Like [`run_indexed`], but folds results with `identity`/`fold`/`reduce`
/// instead of materialising a vector. The reduction must be associative and
/// commutative for the outcome to be deterministic (e.g. a counter merge or
/// a per-key map union). **Floating-point sums are not associative** — when
/// bit-exact reproducibility across thread counts matters, prefer
/// [`run_indexed`] followed by a sequential fold, as the training pipeline
/// does.
pub fn run_indexed_reduce<A, F, R, I>(
    master: &Rng,
    count: usize,
    identity: I,
    fold: F,
    reduce: R,
) -> A
where
    A: Send,
    I: Fn() -> A + Sync + Send,
    F: Fn(A, usize, &mut Rng) -> A + Sync,
    R: Fn(A, A) -> A + Sync + Send,
{
    (0..count)
        .into_par_iter()
        .fold(&identity, |acc, i| {
            let mut rng = master.fork(i as u64);
            fold(acc, i, &mut rng)
        })
        .reduce(&identity, reduce)
}

/// Run a job per element of `items`, in parallel, each with a forked stream.
pub fn map_items<T, U, F>(master: &Rng, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T, usize, &mut Rng) -> U + Sync,
{
    items
        .par_iter()
        .enumerate()
        .map(|(i, item)| {
            let mut rng = master.fork(i as u64);
            f(item, i, &mut rng)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::Welford;

    #[test]
    fn run_indexed_matches_sequential() {
        let master = Rng::new(7);
        let par = run_indexed(&master, 257, |i, rng| i as u64 ^ rng.next_u64());
        let seq: Vec<u64> = (0..257u64).map(|i| i ^ master.fork(i).next_u64()).collect();
        assert_eq!(par, seq);
    }

    #[test]
    fn run_indexed_is_repeatable() {
        let master = Rng::new(13);
        let a = run_indexed(&master, 100, |_, rng| rng.next_f64());
        let b = run_indexed(&master, 100, |_, rng| rng.next_f64());
        assert_eq!(a, b);
    }

    #[test]
    fn reduce_welford_matches_vector_path() {
        let master = Rng::new(21);
        let samples = run_indexed(&master, 10_000, |_, rng| rng.next_f64());
        let mut expect = Welford::new();
        for &s in &samples {
            expect.push(s);
        }
        let got = run_indexed_reduce(
            &master,
            10_000,
            Welford::new,
            |mut acc, _, rng| {
                acc.push(rng.next_f64());
                acc
            },
            |mut a, b| {
                a.merge(&b);
                a
            },
        );
        assert_eq!(got.count(), expect.count());
        assert!((got.mean() - expect.mean()).abs() < 1e-12);
    }

    #[test]
    fn map_items_preserves_order() {
        let master = Rng::new(3);
        let items: Vec<i32> = (0..50).collect();
        let out = map_items(&master, &items, |&x, i, _| (x, i));
        for (k, &(x, i)) in out.iter().enumerate() {
            assert_eq!(x as usize, k);
            assert_eq!(i, k);
        }
    }

    #[test]
    fn zero_count_is_fine() {
        let master = Rng::new(9);
        let out: Vec<u64> = run_indexed(&master, 0, |_, rng| rng.next_u64());
        assert!(out.is_empty());
    }
}
