//! Streaming quantile estimation (the P² algorithm).
//!
//! Large-scale experiment sweeps produce millions of per-job bounded
//! slowdowns; holding them all to compute a median is wasteful. The P²
//! algorithm (Jain & Chlamtac 1985) tracks a single quantile with five
//! markers and O(1) memory, adjusting marker heights with a piecewise
//! parabolic prediction.

use serde::{Deserialize, Serialize};

/// Streaming estimator of one quantile `q ∈ (0, 1)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct P2Quantile {
    q: f64,
    /// Marker heights (estimates of the 0, q/2, q, (1+q)/2, 1 quantiles).
    heights: [f64; 5],
    /// Marker positions (1-based ranks).
    positions: [f64; 5],
    /// Desired marker positions.
    desired: [f64; 5],
    /// Desired position increments per observation.
    increments: [f64; 5],
    /// Observations seen so far.
    count: u64,
    /// Initial buffer until five observations arrive.
    initial: Vec<f64>,
}

impl P2Quantile {
    /// Create an estimator for quantile `q`.
    ///
    /// # Panics
    /// Panics unless `0 < q < 1`.
    pub fn new(q: f64) -> Self {
        assert!(q > 0.0 && q < 1.0, "quantile must be in (0, 1)");
        Self {
            q,
            heights: [0.0; 5],
            positions: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0],
            increments: [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0],
            count: 0,
            initial: Vec::with_capacity(5),
        }
    }

    /// A streaming median estimator.
    pub fn median() -> Self {
        Self::new(0.5)
    }

    /// Number of observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Record one observation.
    pub fn push(&mut self, x: f64) {
        assert!(!x.is_nan(), "cannot rank NaN");
        self.count += 1;
        if self.count <= 5 {
            self.initial.push(x);
            if self.count == 5 {
                self.initial.sort_by(f64::total_cmp);
                for (h, &v) in self.heights.iter_mut().zip(&self.initial) {
                    *h = v;
                }
            }
            return;
        }

        // Find the cell k with heights[k] <= x < heights[k+1], adjusting
        // the extremes.
        let k = if x < self.heights[0] {
            self.heights[0] = x;
            0
        } else if x >= self.heights[4] {
            self.heights[4] = x;
            3
        } else {
            let mut cell = 0;
            for i in 0..4 {
                if x >= self.heights[i] && x < self.heights[i + 1] {
                    cell = i;
                    break;
                }
            }
            cell
        };

        for p in self.positions.iter_mut().skip(k + 1) {
            *p += 1.0;
        }
        for (d, inc) in self.desired.iter_mut().zip(&self.increments) {
            *d += inc;
        }

        // Adjust the three interior markers.
        for i in 1..4 {
            let delta = self.desired[i] - self.positions[i];
            let right_gap = self.positions[i + 1] - self.positions[i];
            let left_gap = self.positions[i - 1] - self.positions[i];
            if (delta >= 1.0 && right_gap > 1.0) || (delta <= -1.0 && left_gap < -1.0) {
                let d = delta.signum();
                let candidate = self.parabolic(i, d);
                self.heights[i] =
                    if self.heights[i - 1] < candidate && candidate < self.heights[i + 1] {
                        candidate
                    } else {
                        self.linear(i, d)
                    };
                self.positions[i] += d;
            }
        }
    }

    fn parabolic(&self, i: usize, d: f64) -> f64 {
        let p = &self.positions;
        let h = &self.heights;
        h[i] + d / (p[i + 1] - p[i - 1])
            * ((p[i] - p[i - 1] + d) * (h[i + 1] - h[i]) / (p[i + 1] - p[i])
                + (p[i + 1] - p[i] - d) * (h[i] - h[i - 1]) / (p[i] - p[i - 1]))
    }

    fn linear(&self, i: usize, d: f64) -> f64 {
        let j = if d > 0.0 { i + 1 } else { i - 1 };
        self.heights[i]
            + d * (self.heights[j] - self.heights[i]) / (self.positions[j] - self.positions[i])
    }

    /// Current quantile estimate. `None` until at least one observation;
    /// exact (sorted-buffer) for fewer than five.
    pub fn estimate(&self) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        if self.count < 5 {
            let mut buf = self.initial.clone();
            buf.sort_by(f64::total_cmp);
            return Some(crate::stats::quantile_sorted(&buf, self.q));
        }
        Some(self.heights[2])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;
    use crate::stats::quantile;

    #[test]
    fn exact_for_tiny_streams() {
        let mut p = P2Quantile::median();
        p.push(3.0);
        assert_eq!(p.estimate(), Some(3.0));
        p.push(1.0);
        assert_eq!(p.estimate(), Some(2.0));
    }

    #[test]
    fn median_of_uniform_stream() {
        let mut p = P2Quantile::median();
        let mut rng = Rng::new(1);
        for _ in 0..100_000 {
            p.push(rng.next_f64());
        }
        let est = p.estimate().unwrap();
        assert!((est - 0.5).abs() < 0.01, "median estimate {est}");
    }

    #[test]
    fn p90_of_exponential_stream() {
        // Exponential(1): the 90th percentile is ln(10) ≈ 2.3026.
        let mut p = P2Quantile::new(0.9);
        let mut rng = Rng::new(2);
        for _ in 0..200_000 {
            p.push(-rng.next_f64_open().ln());
        }
        let est = p.estimate().unwrap();
        assert!(
            (est - std::f64::consts::LN_10).abs() < 0.08,
            "p90 estimate {est}"
        );
    }

    #[test]
    fn tracks_skewed_slowdown_like_data() {
        // Heavy-tailed data shaped like AVEbsld streams: compare the P²
        // estimate to the exact quantile on the same sample.
        let mut rng = Rng::new(3);
        let xs: Vec<f64> = (0..50_000)
            .map(|_| {
                let u = rng.next_f64_open();
                1.0 + (1.0 / u).powf(0.7) // Pareto-ish, min 2.0
            })
            .collect();
        let mut p = P2Quantile::new(0.5);
        for &x in &xs {
            p.push(x);
        }
        let exact = quantile(&xs, 0.5).unwrap();
        let est = p.estimate().unwrap();
        assert!(
            ((est - exact) / exact).abs() < 0.05,
            "P2 {est} vs exact {exact}"
        );
    }

    #[test]
    fn monotone_transformation_sanity() {
        // All-equal stream: the estimate equals the value.
        let mut p = P2Quantile::new(0.25);
        for _ in 0..1_000 {
            p.push(7.5);
        }
        assert_eq!(p.estimate(), Some(7.5));
    }

    #[test]
    fn empty_stream_gives_none() {
        assert_eq!(P2Quantile::median().estimate(), None);
    }

    #[test]
    #[should_panic]
    fn extreme_quantiles_rejected() {
        P2Quantile::new(1.0);
    }

    #[test]
    #[should_panic]
    fn nan_rejected() {
        P2Quantile::median().push(f64::NAN);
    }
}
