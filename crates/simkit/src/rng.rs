//! Deterministic pseudo-random number generation.
//!
//! The whole reproduction pipeline must be replayable from a single `u64`
//! seed, including under data-parallel execution. We therefore implement a
//! small, well-understood generator stack in-tree:
//!
//! * [`SplitMix64`] — a 64-bit state mixer, used to expand seeds and to
//!   derive independent child streams.
//! * [`Rng`] — xoshiro256++, the workhorse generator. It is fast, has a
//!   2^256-1 period, and passes BigCrush; its reference implementation is
//!   public domain (Blackman & Vigna).
//!
//! Streams are derived with [`Rng::fork`], which hashes the parent seed with
//! a stream index through SplitMix64. Two forks with different indices are
//! statistically independent for every practical purpose, which is what the
//! parallel trial driver relies on (each trial forks its own stream, so
//! results do not depend on thread scheduling).

/// SplitMix64 seed expander (Steele, Lea & Flood; public-domain reference).
///
/// Primarily used to turn arbitrary user seeds into well-mixed xoshiro
/// state, and to combine a seed with a stream index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a new mixer from a raw seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Produce the next 64-bit output and advance the state.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256++ generator with SplitMix64 seeding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
    /// Seed this generator was constructed from (for diagnostics/replay).
    seed: u64,
}

#[inline]
fn rotl(x: u64, k: u32) -> u64 {
    x.rotate_left(k)
}

impl Rng {
    /// Create a generator from a seed. Any seed (including 0) is valid; the
    /// state is expanded through SplitMix64 so it is never all-zero.
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Self {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
            seed,
        }
    }

    /// The seed used to construct this generator.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derive an independent child stream for `index`.
    ///
    /// Forking is deterministic: `rng.fork(i)` depends only on the parent's
    /// *seed* (not its current position) and `i`, so parallel workers can
    /// fork by task index and produce schedules identical to a sequential
    /// run.
    pub fn fork(&self, index: u64) -> Rng {
        let mut sm = SplitMix64::new(self.seed ^ 0xA076_1D64_78BD_642F);
        let a = sm.next_u64();
        let mut sm2 = SplitMix64::new(a ^ index.wrapping_mul(0xE703_7ED1_A0B4_28DB));
        Rng::new(sm2.next_u64())
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = rotl(self.s[3], 45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // Take the top 53 bits; 2^-53 scaling yields [0,1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in the open interval `(0, 1)`; safe for `ln()`.
    #[inline]
    pub fn next_f64_open(&mut self) -> f64 {
        loop {
            let x = self.next_f64();
            if x > 0.0 {
                return x;
            }
        }
    }

    /// Uniform integer in `[0, n)` using Lemire's unbiased method.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn next_below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "next_below(0) is meaningless");
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut low = m as u64;
        if low < n {
            let threshold = n.wrapping_neg() % n;
            while low < threshold {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                low = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    /// Panics if `lo > hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "range_u64: lo > hi");
        lo + self.next_below(hi - lo + 1)
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0,1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// In-place Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// A fresh random permutation of `0..n`.
    pub fn permutation(&mut self, n: usize) -> Vec<usize> {
        let mut v: Vec<usize> = (0..n).collect();
        self.shuffle(&mut v);
        v
    }

    /// Choose a uniformly random element of a non-empty slice.
    ///
    /// # Panics
    /// Panics if the slice is empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> &'a T {
        assert!(!slice.is_empty(), "choose on empty slice");
        &slice[self.next_below(slice.len() as u64) as usize]
    }

    /// Sample an index in `0..weights.len()` with probability proportional to
    /// `weights[i]`. Non-finite or negative weights are treated as zero.
    ///
    /// # Panics
    /// Panics if the total weight is not positive.
    pub fn choose_weighted(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights
            .iter()
            .map(|&w| if w.is_finite() && w > 0.0 { w } else { 0.0 })
            .sum();
        assert!(
            total > 0.0,
            "choose_weighted: total weight must be positive"
        );
        let mut u = self.next_f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            let w = if w.is_finite() && w > 0.0 { w } else { 0.0 };
            if u < w {
                return i;
            }
            u -= w;
        }
        // Floating-point round-off: return the last positively-weighted index.
        weights
            .iter()
            .rposition(|&w| w.is_finite() && w > 0.0)
            .expect("at least one positive weight")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference outputs for seed 1234567 from the public-domain C code.
        let mut sm = SplitMix64::new(1234567);
        let a = sm.next_u64();
        let b = sm.next_u64();
        assert_ne!(a, b);
        // Determinism.
        let mut sm2 = SplitMix64::new(1234567);
        assert_eq!(sm2.next_u64(), a);
        assert_eq!(sm2.next_u64(), b);
    }

    #[test]
    fn rng_is_deterministic() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2, "seeds 1 and 2 should produce distinct streams");
    }

    #[test]
    fn forks_are_independent_of_parent_position() {
        let parent1 = Rng::new(7);
        let mut parent2 = Rng::new(7);
        for _ in 0..10 {
            parent2.next_u64();
        }
        let mut f1 = parent1.fork(3);
        let mut f2 = parent2.fork(3);
        for _ in 0..32 {
            assert_eq!(f1.next_u64(), f2.next_u64());
        }
    }

    #[test]
    fn fork_streams_differ() {
        let parent = Rng::new(7);
        let mut f0 = parent.fork(0);
        let mut f1 = parent.fork(1);
        let same = (0..64).filter(|_| f0.next_u64() == f1.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn f64_is_in_unit_interval() {
        let mut r = Rng::new(99);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_near_half() {
        let mut r = Rng::new(5);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn next_below_is_in_range_and_roughly_uniform() {
        let mut r = Rng::new(11);
        let mut counts = [0usize; 7];
        for _ in 0..70_000 {
            counts[r.next_below(7) as usize] += 1;
        }
        for &c in &counts {
            assert!((c as i64 - 10_000).abs() < 1_000, "count {c}");
        }
    }

    #[test]
    fn range_u64_inclusive() {
        let mut r = Rng::new(3);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..10_000 {
            let x = r.range_u64(2, 5);
            assert!((2..=5).contains(&x));
            saw_lo |= x == 2;
            saw_hi |= x == 5;
        }
        assert!(saw_lo && saw_hi);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Rng::new(17);
        let mut v: Vec<usize> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn permutation_uniformity_first_position() {
        // Each element should appear in position 0 about n/len times.
        let mut r = Rng::new(23);
        let mut counts = [0usize; 5];
        for _ in 0..50_000 {
            let p = r.permutation(5);
            counts[p[0]] += 1;
        }
        for &c in &counts {
            assert!((c as i64 - 10_000).abs() < 1_000, "count {c}");
        }
    }

    #[test]
    fn choose_weighted_respects_weights() {
        let mut r = Rng::new(31);
        let w = [1.0, 0.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..40_000 {
            counts[r.choose_weighted(&w)] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.3, "ratio {ratio}");
    }

    #[test]
    #[should_panic]
    fn choose_weighted_rejects_all_zero() {
        let mut r = Rng::new(1);
        r.choose_weighted(&[0.0, 0.0]);
    }

    #[test]
    fn chance_extremes() {
        let mut r = Rng::new(77);
        for _ in 0..100 {
            assert!(!r.chance(0.0));
            assert!(r.chance(1.1));
        }
    }
}
