//! Descriptive statistics used throughout the evaluation harness.
//!
//! The paper reports medians, means, standard deviations and boxplot
//! five-number summaries (median, quartiles, whiskers at 1.5×IQR, outliers)
//! of the average bounded slowdown across experiment repetitions.

use serde::{Deserialize, Serialize};

/// Arithmetic mean. Returns `None` for an empty slice.
pub fn mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    Some(xs.iter().sum::<f64>() / xs.len() as f64)
}

/// Unbiased sample variance (n-1 denominator). `None` if fewer than 2 points.
pub fn variance(xs: &[f64]) -> Option<f64> {
    if xs.len() < 2 {
        return None;
    }
    let m = mean(xs)?;
    Some(xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() as f64 - 1.0))
}

/// Sample standard deviation. `None` if fewer than 2 points.
pub fn std_dev(xs: &[f64]) -> Option<f64> {
    variance(xs).map(f64::sqrt)
}

/// Population standard deviation (n denominator), as used for the Fig. 2
/// convergence study where the whole repetition set is the population.
pub fn std_dev_population(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    let m = mean(xs)?;
    Some((xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64).sqrt())
}

/// Linear-interpolation quantile (same convention as NumPy's default).
///
/// `q` must lie in `[0, 1]`. Returns `None` for an empty slice.
pub fn quantile(xs: &[f64], q: f64) -> Option<f64> {
    if xs.is_empty() || !(0.0..=1.0).contains(&q) {
        return None;
    }
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(f64::total_cmp);
    Some(quantile_sorted(&sorted, q))
}

/// Quantile of an already-sorted slice (ascending). Panics on empty input.
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty());
    let pos = q * (sorted.len() as f64 - 1.0);
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Median. Returns `None` for an empty slice.
pub fn median(xs: &[f64]) -> Option<f64> {
    quantile(xs, 0.5)
}

/// Boxplot summary matching matplotlib's default whisker convention
/// (the one used by the paper's figures): whiskers extend to the most
/// extreme data point within 1.5×IQR of the box; everything beyond is an
/// outlier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BoxplotSummary {
    /// First quartile (25th percentile).
    pub q1: f64,
    /// Median (50th percentile).
    pub median: f64,
    /// Third quartile (75th percentile).
    pub q3: f64,
    /// Lowest observation within `q1 - 1.5*iqr`.
    pub whisker_lo: f64,
    /// Highest observation within `q3 + 1.5*iqr`.
    pub whisker_hi: f64,
    /// Observations outside the whiskers.
    pub outliers: Vec<f64>,
    /// Arithmetic mean of all observations.
    pub mean: f64,
    /// Number of observations.
    pub count: usize,
}

impl BoxplotSummary {
    /// Compute the summary. Returns `None` for an empty slice.
    pub fn from_samples(xs: &[f64]) -> Option<Self> {
        if xs.is_empty() {
            return None;
        }
        let mut sorted: Vec<f64> = xs.to_vec();
        sorted.sort_by(f64::total_cmp);
        let q1 = quantile_sorted(&sorted, 0.25);
        let med = quantile_sorted(&sorted, 0.5);
        let q3 = quantile_sorted(&sorted, 0.75);
        let iqr = q3 - q1;
        let lo_fence = q1 - 1.5 * iqr;
        let hi_fence = q3 + 1.5 * iqr;
        let whisker_lo = sorted
            .iter()
            .copied()
            .find(|&x| x >= lo_fence)
            .unwrap_or(sorted[0]);
        let whisker_hi = sorted
            .iter()
            .rev()
            .copied()
            .find(|&x| x <= hi_fence)
            .unwrap_or(*sorted.last().unwrap());
        let outliers = sorted
            .iter()
            .copied()
            .filter(|&x| x < lo_fence || x > hi_fence)
            .collect();
        Some(Self {
            q1,
            median: med,
            q3,
            whisker_lo,
            whisker_hi,
            outliers,
            mean: mean(xs).unwrap(),
            count: xs.len(),
        })
    }

    /// Inter-quartile range.
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }
}

/// A fixed-width histogram over `[lo, hi)` with out-of-range counting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    below: u64,
    above: u64,
    nan: u64,
}

impl Histogram {
    /// Create a histogram with `nbins` equal-width bins over `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `nbins == 0` or `lo >= hi`.
    pub fn new(lo: f64, hi: f64, nbins: usize) -> Self {
        assert!(nbins > 0, "histogram needs at least one bin");
        assert!(lo < hi, "histogram range must be non-empty");
        Self {
            lo,
            hi,
            bins: vec![0; nbins],
            below: 0,
            above: 0,
            nan: 0,
        }
    }

    /// Record one observation. NaN goes to its own counter — both range
    /// comparisons are false for NaN, and the saturating `as usize` cast
    /// would otherwise silently deposit it in bin 0 as if it were a real
    /// measurement at `lo`.
    pub fn record(&mut self, x: f64) {
        if x.is_nan() {
            self.nan += 1;
        } else if x < self.lo {
            self.below += 1;
        } else if x >= self.hi {
            self.above += 1;
        } else {
            let nbins = self.bins.len();
            let idx = ((x - self.lo) / (self.hi - self.lo) * nbins as f64) as usize;
            self.bins[idx.min(nbins - 1)] += 1;
        }
    }

    /// Per-bin counts.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Count of observations below the range.
    pub fn below(&self) -> u64 {
        self.below
    }

    /// Count of observations at or above the range's upper bound.
    pub fn above(&self) -> u64 {
        self.above
    }

    /// Count of NaN observations (never binned; a nonzero value usually
    /// means an upstream metric produced garbage).
    pub fn nan(&self) -> u64 {
        self.nan
    }

    /// Total number of recorded observations, NaN included.
    pub fn total(&self) -> u64 {
        self.below + self.above + self.nan + self.bins.iter().sum::<u64>()
    }
}

/// Streaming mean/variance accumulator (Welford's algorithm).
///
/// Used by the training pipeline to aggregate per-task scores without
/// retaining every trial outcome in memory.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Merge another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &Welford) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        self.mean += delta * other.n as f64 / n as f64;
        self.m2 += other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n as f64;
        self.n = n;
    }

    /// Number of observations recorded.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Mean of recorded observations (0 if none).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance. `None` if fewer than 2 observations.
    pub fn variance(&self) -> Option<f64> {
        if self.n < 2 {
            None
        } else {
            Some(self.m2 / (self.n as f64 - 1.0))
        }
    }

    /// Sample standard deviation. `None` if fewer than 2 observations.
    pub fn std_dev(&self) -> Option<f64> {
        self.variance().map(f64::sqrt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_median_basic() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(mean(&xs), Some(2.5));
        assert_eq!(median(&xs), Some(2.5));
        assert_eq!(median(&[5.0, 1.0, 3.0]), Some(3.0));
    }

    #[test]
    fn empty_inputs_yield_none() {
        assert_eq!(mean(&[]), None);
        assert_eq!(median(&[]), None);
        assert_eq!(std_dev(&[1.0]), None);
        assert!(BoxplotSummary::from_samples(&[]).is_none());
    }

    #[test]
    fn variance_matches_hand_computation() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        // population variance is 4.0; sample variance is 32/7.
        assert!((variance(&xs).unwrap() - 32.0 / 7.0).abs() < 1e-12);
        assert!((std_dev_population(&xs).unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn quantile_interpolates() {
        let xs = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(quantile(&xs, 0.0), Some(10.0));
        assert_eq!(quantile(&xs, 1.0), Some(40.0));
        assert!((quantile(&xs, 0.25).unwrap() - 17.5).abs() < 1e-12);
    }

    #[test]
    fn quantile_rejects_out_of_range_q() {
        assert_eq!(quantile(&[1.0], 1.5), None);
        assert_eq!(quantile(&[1.0], -0.1), None);
    }

    #[test]
    fn boxplot_no_outliers() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let b = BoxplotSummary::from_samples(&xs).unwrap();
        assert_eq!(b.median, 3.0);
        assert_eq!(b.q1, 2.0);
        assert_eq!(b.q3, 4.0);
        assert_eq!(b.whisker_lo, 1.0);
        assert_eq!(b.whisker_hi, 5.0);
        assert!(b.outliers.is_empty());
        assert_eq!(b.count, 5);
    }

    #[test]
    fn boxplot_detects_outliers() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0, 100.0];
        let b = BoxplotSummary::from_samples(&xs).unwrap();
        assert_eq!(b.outliers, vec![100.0]);
        assert_eq!(b.whisker_hi, 5.0);
    }

    #[test]
    fn histogram_bins_and_overflow() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for x in [0.0, 0.5, 5.0, 9.99, 10.0, -1.0] {
            h.record(x);
        }
        assert_eq!(h.bins()[0], 2);
        assert_eq!(h.bins()[5], 1);
        assert_eq!(h.bins()[9], 1);
        assert_eq!(h.above(), 1);
        assert_eq!(h.below(), 1);
        assert_eq!(h.total(), 6);
    }

    #[test]
    fn histogram_nan_never_reaches_bin_zero() {
        // Regression: NaN fails both range comparisons and the saturating
        // `as usize` cast maps it to 0, so it used to inflate bin 0.
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.record(f64::NAN);
        h.record(-f64::NAN);
        assert_eq!(h.bins()[0], 0);
        assert_eq!(h.below(), 0);
        assert_eq!(h.above(), 0);
        assert_eq!(h.nan(), 2);
        assert_eq!(h.total(), 2);
        // Real observations still bin as before alongside the NaNs.
        h.record(0.0);
        assert_eq!(h.bins()[0], 1);
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn welford_matches_batch() {
        let xs = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        assert!((w.mean() - mean(&xs).unwrap()).abs() < 1e-12);
        assert!((w.variance().unwrap() - variance(&xs).unwrap()).abs() < 1e-12);
    }

    #[test]
    fn welford_merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut all = Welford::new();
        for &x in &xs {
            all.push(x);
        }
        let mut left = Welford::new();
        let mut right = Welford::new();
        for &x in &xs[..37] {
            left.push(x);
        }
        for &x in &xs[37..] {
            right.push(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), all.count());
        assert!((left.mean() - all.mean()).abs() < 1e-10);
        assert!((left.variance().unwrap() - all.variance().unwrap()).abs() < 1e-10);
    }

    #[test]
    fn welford_merge_with_empty() {
        let mut a = Welford::new();
        a.push(1.0);
        a.push(2.0);
        let b = Welford::new();
        let mut merged = a;
        merged.merge(&b);
        assert_eq!(merged.count(), 2);
        let mut empty = Welford::new();
        empty.merge(&a);
        assert_eq!(empty.count(), 2);
        assert!((empty.mean() - 1.5).abs() < 1e-12);
    }
}
