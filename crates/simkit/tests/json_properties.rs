//! Property tests for `simkit::json`: exact-bit round-tripping of
//! arbitrary `f64` bit patterns, deep nesting, escape sequences, and
//! malformed-input rejection. RNG-driven off the deterministic in-tree
//! streams, so every run exercises the same cases.

use dynsched_simkit::json::{checksum, parse, Json, MAX_DEPTH};
use dynsched_simkit::rng::Rng;

fn roundtrip(v: &Json) -> Json {
    let text = v.to_text();
    parse(&text).unwrap_or_else(|e| panic!("round trip failed on {text:?}: {e}"))
}

#[test]
fn arbitrary_f64_bit_patterns_roundtrip_exactly() {
    let mut rng = Rng::new(0x5C17F64);
    for _ in 0..20_000 {
        let bits = rng.next_u64();
        let v = Json::F64(f64::from_bits(bits));
        let back = roundtrip(&v);
        let got = back.as_f64().expect("number comes back as F64");
        assert_eq!(got.to_bits(), bits, "bits {bits:016x} drifted");
    }
}

#[test]
fn curated_edge_doubles_roundtrip_exactly() {
    let cases = [
        0.0f64.to_bits(),
        (-0.0f64).to_bits(),
        f64::NAN.to_bits(),
        0x7FF8_DEAD_BEEF_CAFE, // NaN with payload
        0xFFF8_0000_0000_0001, // negative NaN with payload
        0x7FF0_0000_0000_0001, // signaling-NaN pattern
        f64::INFINITY.to_bits(),
        f64::NEG_INFINITY.to_bits(),
        f64::MIN_POSITIVE.to_bits(),
        0x0000_0000_0000_0001, // smallest subnormal
        0x000F_FFFF_FFFF_FFFF, // largest subnormal
        f64::MAX.to_bits(),
        f64::MIN.to_bits(),
        f64::EPSILON.to_bits(),
        1.0f64.to_bits(),
        (1.0f64 / 3.0).to_bits(),
    ];
    for bits in cases {
        let back = roundtrip(&Json::F64(f64::from_bits(bits)));
        assert_eq!(back.as_f64().unwrap().to_bits(), bits, "bits {bits:016x}");
    }
}

#[test]
fn arbitrary_u64s_roundtrip_as_integers() {
    let mut rng = Rng::new(0x5C17_0064);
    for _ in 0..5_000 {
        let u = rng.next_u64();
        let back = roundtrip(&Json::Uint(u));
        assert_eq!(back.as_u64(), Some(u));
    }
}

/// Grow a random tree, bounded in depth and fan-out, and round-trip it.
fn random_tree(rng: &mut Rng, depth: usize) -> Json {
    let pick = rng.next_u64() % if depth == 0 { 5 } else { 7 };
    match pick {
        0 => Json::Null,
        1 => Json::Bool(rng.next_u64().is_multiple_of(2)),
        2 => Json::Uint(rng.next_u64()),
        3 => Json::F64(f64::from_bits(rng.next_u64())),
        4 => Json::Str(random_string(rng)),
        5 => Json::Array(
            (0..rng.next_u64() % 4)
                .map(|_| random_tree(rng, depth - 1))
                .collect(),
        ),
        _ => Json::Object(
            (0..rng.next_u64() % 4)
                .map(|_| (random_string(rng), random_tree(rng, depth - 1)))
                .collect(),
        ),
    }
}

fn random_string(rng: &mut Rng) -> String {
    // A palette biased toward characters that stress the escaper.
    const PALETTE: &[char] = &[
        'a',
        'Z',
        '0',
        ' ',
        '"',
        '\\',
        '\n',
        '\r',
        '\t',
        '\u{0}',
        '\u{1b}',
        '/',
        'é',
        'λ',
        '\u{1F600}',
        '\u{FFFD}',
        '{',
        '}',
        '$',
        ':',
    ];
    let len = (rng.next_u64() % 12) as usize;
    (0..len)
        .map(|_| PALETTE[(rng.next_u64() as usize) % PALETTE.len()])
        .collect()
}

#[test]
fn random_trees_roundtrip_structurally() {
    let mut rng = Rng::new(0x5C17_7EE5);
    for _ in 0..2_000 {
        let tree = random_tree(&mut rng, 4);
        let text = tree.to_text();
        let back = parse(&text).unwrap_or_else(|e| panic!("{e} on {text:?}"));
        assert_eq!(back, tree);
        // Serialization is deterministic, so a second trip is byte-stable
        // — the property the checkpoint checksums rely on.
        assert_eq!(back.to_text(), text);
        assert_eq!(
            checksum(back.to_text().as_bytes()),
            checksum(text.as_bytes())
        );
    }
}

#[test]
fn escape_sequences_parse() {
    let v = parse(r#""\u0041\u00e9\ud83d\ude00\"\\\/\b\f\n\r\t""#).unwrap();
    assert_eq!(v.as_str(), Some("Aé\u{1F600}\"\\/\u{8}\u{c}\n\r\t"));
}

#[test]
fn nesting_within_the_limit_roundtrips() {
    let mut v = Json::Uint(7);
    for _ in 0..MAX_DEPTH {
        v = Json::Array(vec![v]);
    }
    assert_eq!(roundtrip(&v), v);
}

#[test]
fn nesting_beyond_the_limit_is_rejected_not_a_stack_overflow() {
    let deep = "[".repeat(MAX_DEPTH + 10);
    let err = parse(&deep).unwrap_err();
    assert!(err.msg.contains("nesting"), "got: {err}");
    // Far beyond the limit must also fail cleanly (no recursion blow-up).
    let very_deep = format!("{}1{}", "[".repeat(100_000), "]".repeat(100_000));
    assert!(parse(&very_deep).is_err());
}

#[test]
fn malformed_inputs_are_rejected() {
    let cases: &[&str] = &[
        "",
        "   ",
        "{",
        "}",
        "[1, 2",
        "[1 2]",
        "{\"a\":}",
        "{\"a\" 1}",
        "{a: 1}",
        "\"unterminated",
        "\"bad \\escape\"",
        "\"\\u12\"",
        "\"\\ud800 lone\"",
        "\"\\udc00\"",
        "truE",
        "nan",
        "Infinity",
        "inf", // non-finite without exact bits
        "NaN", // non-finite without exact bits
        "-",
        "1.",
        ".5",
        "1e",
        "1e+",
        "01",
        "1.5$",                  // missing bits
        "1.5$3ff800000000000",   // 15 hex digits
        "1.5$3ff80000000000000", // 17 hex digits
        "1.5$3ff8000000000001",  // bits disagree with decimal
        "NaN$3ff8000000000000",  // bits are not NaN
        "inf$0000000000000000",  // bits are not inf
        "1 2",
        "[1]]",
        "{\"a\":1}garbage",
        "\u{1}",
    ];
    for bad in cases {
        assert!(parse(bad).is_err(), "input {bad:?} should be rejected");
    }
}

#[test]
fn fuzzed_garbage_never_panics() {
    // The parser must reject or accept, never panic, on arbitrary bytes.
    let mut rng = Rng::new(0x5C17_BAD5);
    const PALETTE: &[u8] = b"{}[]\",:.0123456789eE$-+ \t\nabcdefintrulNaN\\u\"";
    for _ in 0..20_000 {
        let len = (rng.next_u64() % 40) as usize;
        let bytes: Vec<u8> = (0..len)
            .map(|_| PALETTE[(rng.next_u64() as usize) % PALETTE.len()])
            .collect();
        let text = String::from_utf8(bytes).unwrap();
        let _ = parse(&text); // outcome is irrelevant; not panicking is the test
    }
}
