//! Synthetic stand-ins for the Parallel Workloads Archive traces.
//!
//! The paper evaluates on four real SWF logs (its Table 5):
//!
//! | Name         | Year | CPUs    | Jobs    | Util % | Duration  |
//! |--------------|------|---------|---------|--------|-----------|
//! | Curie        | 2011 | 93,312  | 312,826 | 62.0   | 20 months |
//! | ANL Intrepid | 2009 | 163,840 | 68,936  | 59.6   | 8 months  |
//! | SDSC Blue    | 2003 | 1,152   | 243,306 | 76.7   | 32 months |
//! | CTC SP2      | 1997 | 338     | 77,222  | 85.2   | 11 months |
//!
//! This environment has no network access to the archive, so we synthesize
//! a stand-in per platform: a Lublin-model trace re-parameterised with the
//! platform's core count, arrival rate tuned to the published job density,
//! load calibrated toward the published utilization, and Tsafrir-style user
//! estimates attached. The experiment harness consumes these through
//! exactly the same `Trace`/SWF code path a real log would take, so anyone
//! with the archive files can substitute them directly
//! (see `examples/real_trace_sim.rs`).

use crate::lublin::LublinModel;
use crate::registry::fxhash;
use crate::sequence::{extract_sequences, SequenceError, SequenceSpec};
use crate::store::{TraceKey, TraceStore, TraceView};
use crate::trace::Trace;
use crate::tsafrir::TsafrirEstimates;
use dynsched_simkit::Rng;
use serde::{Deserialize, Serialize};

/// Published characteristics of one archive platform (the paper's Table 5).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ArchivePlatform {
    /// Platform name as used in the paper.
    pub name: &'static str,
    /// Year the log was collected.
    pub year: u32,
    /// Number of CPUs/cores.
    pub cpus: u32,
    /// Jobs in the full log.
    pub jobs: u32,
    /// Mean utilization, percent.
    pub utilization_pct: f64,
    /// Log duration, months.
    pub duration_months: u32,
    /// Site maximum walltime (seconds) — production machines cap job
    /// runtimes, which keeps the `r·n` term of size-based policies in the
    /// range the paper's learned coefficients were balanced for.
    pub max_walltime: f64,
}

impl ArchivePlatform {
    /// CEA Curie (2011).
    pub const CURIE: Self = Self {
        name: "Curie",
        year: 2011,
        cpus: 93_312,
        jobs: 312_826,
        utilization_pct: 62.0,
        duration_months: 20,
        max_walltime: 3.0 * 86_400.0,
    };

    /// ANL Intrepid BlueGene/P (2009). (Spelled "Interpid" in the paper.)
    pub const ANL_INTREPID: Self = Self {
        name: "ANL Intrepid",
        year: 2009,
        cpus: 163_840,
        jobs: 68_936,
        utilization_pct: 59.6,
        duration_months: 8,
        max_walltime: 12.0 * 3_600.0,
    };

    /// SDSC Blue Horizon (2003).
    pub const SDSC_BLUE: Self = Self {
        name: "SDSC Blue",
        year: 2003,
        cpus: 1_152,
        jobs: 243_306,
        utilization_pct: 76.7,
        duration_months: 32,
        max_walltime: 36.0 * 3_600.0,
    };

    /// CTC SP2 (1997).
    pub const CTC_SP2: Self = Self {
        name: "CTC SP2",
        year: 1997,
        cpus: 338,
        jobs: 77_222,
        utilization_pct: 85.2,
        duration_months: 11,
        max_walltime: 18.0 * 3_600.0,
    };

    /// All four platforms, in the paper's order.
    pub const ALL: [Self; 4] = [
        Self::CURIE,
        Self::ANL_INTREPID,
        Self::SDSC_BLUE,
        Self::CTC_SP2,
    ];

    /// Mean jobs submitted per day in the original log (30-day months).
    pub fn jobs_per_day(&self) -> f64 {
        self.jobs as f64 / (self.duration_months as f64 * 30.0)
    }

    /// Target mean utilization in `[0,1]`.
    pub fn utilization(&self) -> f64 {
        self.utilization_pct / 100.0
    }

    /// Build the Lublin generator tuned to this platform: size ceiling at
    /// the platform width and offered load calibrated to the published
    /// utilization (utilization ≤ offered load, so we aim slightly above).
    pub fn model(&self, rng: &mut Rng) -> LublinModel {
        let mut base = LublinModel::new(self.cpus);
        base.max_runtime = self.max_walltime;
        // Achieved utilization trails offered load because of drain/ramp
        // effects; 5% headroom keeps the stand-in near the published figure.
        let target = (self.utilization() * 1.05).min(0.98);
        base.calibrated_to_load(target, rng)
    }

    /// Generate a synthetic stand-in trace covering `days` days, with
    /// Tsafrir estimates attached.
    pub fn synthesize(&self, days: f64, seed: u64) -> Trace {
        let mut rng = Rng::new(seed ^ fxhash(self.name));
        let model = self.model(&mut rng);
        let trace = model.generate_span(days * 86_400.0, &mut rng);
        let estimates = TsafrirEstimates::with_max_estimate(model.max_runtime);
        estimates.apply(&trace, &mut rng)
    }

    /// Generate the paper's experiment input directly: `spec.count` disjoint
    /// sequences of `spec.days` days each.
    pub fn synthesize_sequences(
        &self,
        spec: &SequenceSpec,
        seed: u64,
    ) -> Result<Vec<Trace>, SequenceError> {
        // One spare window of slack covers any skipped sparse window.
        let days = spec.days * (spec.count as f64 + 1.0);
        let trace = self.synthesize(days, seed);
        extract_sequences(&trace, spec)
    }

    /// The interning key of this platform's stand-in sequences under
    /// `(spec, seed)`: everything that influences
    /// [`ArchivePlatform::synthesize_sequences`] is captured, so distinct
    /// protocols never share a store entry.
    pub fn sequence_key(&self, spec: &SequenceSpec, seed: u64) -> TraceKey {
        TraceKey::new(format!("archive/{}", self.name), seed)
            .with_u64(spec.count as u64)
            .with_f64(spec.days)
            .with_u64(spec.min_jobs as u64)
    }

    /// [`ArchivePlatform::synthesize_sequences`] through a [`TraceStore`]:
    /// the stand-in is synthesized once per `(platform, spec, seed)` and
    /// shared by every evaluation condition that names it — the Table-4
    /// grid alone asks for each platform's sequences three times.
    pub fn sequence_views(
        &self,
        store: &TraceStore,
        spec: &SequenceSpec,
        seed: u64,
    ) -> Result<Vec<TraceView>, SequenceError> {
        Ok(store
            .get_or_try_build_set(self.sequence_key(spec, seed), || {
                self.synthesize_sequences(spec, seed)
            })?
            .to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table5_constants_match_paper() {
        assert_eq!(ArchivePlatform::CURIE.cpus, 93_312);
        assert_eq!(ArchivePlatform::ANL_INTREPID.cpus, 163_840);
        assert_eq!(ArchivePlatform::SDSC_BLUE.cpus, 1_152);
        assert_eq!(ArchivePlatform::CTC_SP2.cpus, 338);
        assert_eq!(ArchivePlatform::ALL.len(), 4);
    }

    #[test]
    fn jobs_per_day_is_sane() {
        // Curie: 312826 jobs over ~600 days ≈ 521/day.
        let jpd = ArchivePlatform::CURIE.jobs_per_day();
        assert!((jpd - 521.0).abs() < 5.0, "{jpd}");
    }

    #[test]
    fn synthesized_trace_respects_platform_width() {
        let t = ArchivePlatform::CTC_SP2.synthesize(10.0, 42);
        assert!(!t.is_empty());
        for j in t.jobs() {
            assert!(j.cores <= 338);
            assert!(j.estimate >= j.runtime);
        }
    }

    #[test]
    fn synthesized_load_is_near_target() {
        let t = ArchivePlatform::SDSC_BLUE.synthesize(60.0, 7);
        let load = t.summary(1_152).unwrap().offered_load;
        // Calibration tolerance: the published figure is 76.7%.
        assert!(load > 0.45 && load < 1.25, "load {load}");
    }

    #[test]
    fn sequences_extract_for_every_platform() {
        let spec = SequenceSpec {
            count: 3,
            days: 2.0,
            min_jobs: 5,
        };
        for p in ArchivePlatform::ALL {
            let seqs = p.synthesize_sequences(&spec, 11).unwrap();
            assert_eq!(seqs.len(), 3, "{}", p.name);
        }
    }

    #[test]
    fn stand_ins_differ_across_platforms() {
        let a = ArchivePlatform::CURIE.synthesize(2.0, 5);
        let b = ArchivePlatform::CTC_SP2.synthesize(2.0, 5);
        assert_ne!(a.summary(93_312), b.summary(93_312));
    }

    #[test]
    fn synthesis_is_deterministic() {
        let a = ArchivePlatform::SDSC_BLUE.synthesize(2.0, 9);
        let b = ArchivePlatform::SDSC_BLUE.synthesize(2.0, 9);
        assert_eq!(a, b);
    }
}
