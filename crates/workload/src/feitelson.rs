//! A Feitelson'96-style rigid-job workload model.
//!
//! Feitelson's 1996 model (JSSPP, "Packing schemes for gang scheduling")
//! predates Lublin–Feitelson and has a different anatomy: a hand-tailored
//! discrete *harmonic* size distribution with extra mass on powers of two
//! and "interesting" sizes, two-component hyper-exponential runtimes whose
//! mixing couples to the size, Poisson arrivals, and *job repetition*
//! (users resubmit the same job several times in a row).
//!
//! In this reproduction it serves one purpose: a workload that is
//! structurally unlike the Lublin model the policies were trained on, for
//! the cross-model generalization study (`bench generalization_models`) —
//! probing the paper's claim that the learned policies "generalize better
//! over different workloads".

use crate::trace::Trace;
use dynsched_cluster::Job;
use dynsched_simkit::dist::{Exponential, Sample};
use dynsched_simkit::Rng;
use serde::{Deserialize, Serialize};

/// Configuration of the Feitelson'96-style generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeitelsonModel {
    /// Platform width.
    pub max_cores: u32,
    /// Harmonic exponent of the size distribution (`P(n) ∝ n^-h`);
    /// Feitelson used ≈ 1.5.
    pub harmonic_exponent: f64,
    /// Multiplier on the probability of power-of-two sizes.
    pub pow2_boost: f64,
    /// Mean of the short runtime component (seconds).
    pub short_mean: f64,
    /// Mean of the long runtime component (seconds).
    pub long_mean: f64,
    /// Probability of the short component for a serial job; decays with
    /// `log2(size)` so wide jobs skew long.
    pub short_prob_serial: f64,
    /// Mean inter-arrival time of job *sessions* (seconds).
    pub mean_interarrival: f64,
    /// Probability that a job is repeated (geometric repetition count).
    pub repeat_prob: f64,
    /// Mean think time between repetitions (seconds).
    pub mean_think_time: f64,
    /// Runtime cap (seconds).
    pub max_runtime: f64,
}

impl FeitelsonModel {
    /// Model with Feitelson'96-flavoured defaults for `max_cores`.
    ///
    /// # Panics
    /// Panics if `max_cores < 2`.
    pub fn new(max_cores: u32) -> Self {
        assert!(max_cores >= 2);
        Self {
            max_cores,
            harmonic_exponent: 1.5,
            pow2_boost: 3.0,
            short_mean: 90.0,
            long_mean: 9_000.0,
            short_prob_serial: 0.75,
            mean_interarrival: 900.0,
            repeat_prob: 0.4,
            mean_think_time: 600.0,
            max_runtime: 2.0 * 86_400.0,
        }
    }

    /// Size-distribution weights over `1..=max_cores`.
    fn size_weights(&self) -> Vec<f64> {
        (1..=self.max_cores)
            .map(|n| {
                let base = (n as f64).powf(-self.harmonic_exponent);
                if n.is_power_of_two() {
                    base * self.pow2_boost
                } else {
                    base
                }
            })
            .collect()
    }

    /// Sample a job size.
    pub fn sample_cores(&self, rng: &mut Rng) -> u32 {
        // The weight vector is O(max_cores); cache-friendly for the sizes
        // this model is used at (≤ a few thousand cores).
        1 + rng.choose_weighted(&self.size_weights()) as u32
    }

    /// Sample a runtime for a job of `cores` cores.
    pub fn sample_runtime(&self, cores: u32, rng: &mut Rng) -> f64 {
        let log_width = (cores.max(1) as f64).log2();
        let max_width = (self.max_cores as f64).log2();
        let short_prob = self.short_prob_serial * (1.0 - 0.6 * log_width / max_width);
        let mean = if rng.chance(short_prob.clamp(0.05, 1.0)) {
            self.short_mean
        } else {
            self.long_mean
        };
        Exponential::new(1.0 / mean)
            .sample(rng)
            .clamp(1.0, self.max_runtime)
    }

    /// Generate `count` jobs starting at time 0 (estimates = runtimes; use
    /// [`TsafrirEstimates`](crate::tsafrir::TsafrirEstimates) for realistic
    /// estimates).
    pub fn generate_jobs(&self, count: usize, rng: &mut Rng) -> Trace {
        let arrival = Exponential::new(1.0 / self.mean_interarrival);
        let think = Exponential::new(1.0 / self.mean_think_time);
        let mut jobs = Vec::with_capacity(count);
        let mut now = 0.0;
        let mut id = 0u32;
        while jobs.len() < count {
            let cores = self.sample_cores(rng);
            let runtime = self.sample_runtime(cores, rng);
            // The session: the job plus a geometric number of repetitions
            // with the same shape, spaced by think times.
            let mut submit = now;
            loop {
                jobs.push(Job::new(id, submit, runtime, runtime, cores));
                id += 1;
                if jobs.len() >= count || !rng.chance(self.repeat_prob) {
                    break;
                }
                submit += runtime + think.sample(rng);
            }
            now += arrival.sample(rng);
        }
        Trace::from_jobs(jobs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_are_in_range_and_small_heavy() {
        let m = FeitelsonModel::new(128);
        let mut rng = Rng::new(1);
        let sizes: Vec<u32> = (0..20_000).map(|_| m.sample_cores(&mut rng)).collect();
        assert!(sizes.iter().all(|&n| (1..=128).contains(&n)));
        let small = sizes.iter().filter(|&&n| n <= 8).count();
        assert!(
            small as f64 / sizes.len() as f64 > 0.5,
            "harmonic mass on small sizes"
        );
    }

    #[test]
    fn pow2_sizes_are_boosted() {
        let m = FeitelsonModel::new(128);
        let mut rng = Rng::new(2);
        let n = 40_000;
        let (mut at16, mut at17) = (0usize, 0usize);
        for _ in 0..n {
            match m.sample_cores(&mut rng) {
                16 => at16 += 1,
                17 => at17 += 1,
                _ => {}
            }
        }
        assert!(at16 > 2 * at17, "16 ({at16}) should dominate 17 ({at17})");
    }

    #[test]
    fn wide_jobs_skew_long() {
        let m = FeitelsonModel::new(128);
        let mut rng = Rng::new(3);
        let mean_rt = |cores: u32, rng: &mut Rng| {
            (0..4_000)
                .map(|_| m.sample_runtime(cores, rng))
                .sum::<f64>()
                / 4_000.0
        };
        let narrow = mean_rt(1, &mut rng);
        let wide = mean_rt(128, &mut rng);
        assert!(wide > narrow * 1.5, "narrow {narrow}, wide {wide}");
    }

    #[test]
    fn generates_requested_count_sorted() {
        let m = FeitelsonModel::new(64);
        let mut rng = Rng::new(4);
        let t = m.generate_jobs(300, &mut rng);
        assert_eq!(t.len(), 300);
        for w in t.jobs().windows(2) {
            assert!(w[1].submit >= w[0].submit);
        }
    }

    #[test]
    fn repetitions_create_identical_shapes() {
        let mut m = FeitelsonModel::new(64);
        m.repeat_prob = 0.9;
        let mut rng = Rng::new(5);
        let t = m.generate_jobs(200, &mut rng);
        // With heavy repetition, many consecutive (runtime, cores) pairs
        // repeat exactly.
        let mut shapes: Vec<(u64, u32)> = t
            .jobs()
            .iter()
            .map(|j| (j.runtime.to_bits(), j.cores))
            .collect();
        shapes.sort_unstable();
        shapes.dedup();
        assert!(
            shapes.len() < 150,
            "expected repeated shapes, found {} distinct of 200",
            shapes.len()
        );
    }

    #[test]
    fn deterministic() {
        let m = FeitelsonModel::new(64);
        let a = m.generate_jobs(100, &mut Rng::new(6));
        let b = m.generate_jobs(100, &mut Rng::new(6));
        assert_eq!(a, b);
    }
}
