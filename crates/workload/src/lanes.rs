//! Dense per-job value lanes stored beside the trace columns.
//!
//! The compiled-policy layer precomputes, for every job of a trace, a
//! small fixed number of *wait-invariant* values (the prefix slots of a
//! `CompiledPolicy`) that stay constant for the job's whole queue
//! lifetime. [`JobLanes`] is the storage for such per-job rows: one flat
//! `Vec<f64>` in trace order with a fixed row stride, living next to the
//! [`TraceColumns`](crate::store::TraceColumns) it annotates — the same
//! SoA discipline as the columns themselves, and reusable across runs
//! without reallocation (the scheduler keeps one inside its workspace).

/// A dense `jobs x slots` block of `f64` values in trace order. Row `i`
/// holds the `slots` values of the job at trace position `i`.
///
/// The buffer is retained across [`JobLanes::reset`] calls, so refilling
/// it for a new `(trace, program)` pair allocates only when it grows —
/// the workspace-reuse contract of the simulation layer.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct JobLanes {
    slots: usize,
    values: Vec<f64>,
}

impl JobLanes {
    /// An empty lane block (no jobs, no slots).
    pub fn new() -> Self {
        Self::default()
    }

    /// Resize to `jobs` rows of `slots` values each, zero-filled. Keeps
    /// the existing allocation when large enough.
    pub fn reset(&mut self, jobs: usize, slots: usize) {
        self.slots = slots;
        self.values.clear();
        self.values.resize(jobs * slots, 0.0);
    }

    /// Values per row.
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// Number of rows (0 when `slots` is 0).
    pub fn jobs(&self) -> usize {
        self.values.len().checked_div(self.slots).unwrap_or(0)
    }

    /// Reshape to `jobs` rows of `slots` values and fill each row through
    /// `f(row_index, row)` in one pass — the initializer the scheduler
    /// uses to evaluate a compiled policy's wait-invariant prefix per
    /// trace position. With `slots == 0` there is nothing to store and
    /// `f` is never called.
    pub fn fill(&mut self, jobs: usize, slots: usize, mut f: impl FnMut(usize, &mut [f64])) {
        self.reset(jobs, slots);
        if slots == 0 {
            return;
        }
        for i in 0..jobs {
            f(i, &mut self.values[i * slots..(i + 1) * slots]);
        }
    }

    /// Row `i` as a slice (empty when `slots` is 0).
    pub fn row(&self, i: usize) -> &[f64] {
        &self.values[i * self.slots..(i + 1) * self.slots]
    }

    /// Row `i` as a mutable slice (empty when `slots` is 0).
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.values[i * self.slots..(i + 1) * self.slots]
    }

    /// The whole block as one flat row-major slice.
    pub fn values(&self) -> &[f64] {
        &self.values
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_are_strided_views() {
        let mut lanes = JobLanes::new();
        lanes.reset(3, 2);
        assert_eq!((lanes.jobs(), lanes.slots()), (3, 2));
        lanes.row_mut(1).copy_from_slice(&[4.0, 5.0]);
        assert_eq!(lanes.row(0), &[0.0, 0.0]);
        assert_eq!(lanes.row(1), &[4.0, 5.0]);
        assert_eq!(lanes.values(), &[0.0, 0.0, 4.0, 5.0, 0.0, 0.0]);
    }

    #[test]
    fn reset_clears_and_reshapes_without_stale_values() {
        let mut lanes = JobLanes::new();
        lanes.reset(2, 3);
        lanes.row_mut(1).copy_from_slice(&[1.0, 2.0, 3.0]);
        lanes.reset(3, 2);
        assert_eq!((lanes.jobs(), lanes.slots()), (3, 2));
        assert!(lanes.values().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn fill_visits_every_row_in_order() {
        let mut lanes = JobLanes::new();
        lanes.fill(3, 2, |i, row| {
            row[0] = i as f64;
            row[1] = 10.0 + i as f64;
        });
        assert_eq!(lanes.values(), &[0.0, 10.0, 1.0, 11.0, 2.0, 12.0]);
        // Zero slots: nothing stored, the filler never runs.
        lanes.fill(4, 0, |_, _| panic!("no rows to fill"));
        assert_eq!(lanes.jobs(), 0);
    }

    #[test]
    fn zero_slots_means_empty_rows() {
        let mut lanes = JobLanes::new();
        lanes.reset(5, 0);
        assert_eq!(lanes.slots(), 0);
        assert_eq!(lanes.jobs(), 0);
        assert!(lanes.row(3).is_empty());
        assert!(lanes.values().is_empty());
    }
}
