//! # dynsched-workload
//!
//! Workload models and trace handling for the `dynsched` SC'17 reproduction:
//!
//! * [`trace`] — in-memory job traces with windowing/rebasing and summary
//!   statistics, plus the [`TraceSource`] layout-abstraction trait the
//!   scheduler engine is generic over;
//! * [`store`] — the columnar trace store: SoA job columns
//!   ([`TraceColumns`]) behind `Arc`-shared [`TraceView`] handles,
//!   interned by generation key in a [`TraceStore`];
//! * [`lanes`] — dense per-job value rows ([`JobLanes`]) stored beside the
//!   columns; the scheduler keeps the wait-invariant prefix slots of a
//!   compiled policy here, one row per trace position;
//! * [`partition`] — per-shard trace partitioning: [`TraceSlice`] presents
//!   a routed subsequence of a parent trace as a [`TraceSource`] without
//!   copying, the shard-local input of the scheduler's federation layer;
//! * [`registry`] — named scenario families (heavy-tail, bursty, diurnal,
//!   Feitelson'96, Tsafrir-estimate mixes, SWF replay) addressable by
//!   every evaluation entry point;
//! * [`swf`] — full Standard Workload Format reader/writer with streaming
//!   (`BufRead`, line-by-line) ingestion, so real Parallel Workloads
//!   Archive logs can be dropped into the harness without fitting in one
//!   allocation;
//! * [`lublin`] — the Lublin–Feitelson rigid-job model used to train the
//!   paper's policies (sizes, size-correlated hyper-gamma runtimes, daily
//!   arrival cycle, load calibration);
//! * [`tsafrir`] — the Tsafrir et al. modal user runtime-estimate model;
//! * [`feitelson`] — the structurally different Feitelson'96 mix for
//!   cross-model generalization studies;
//! * [`sequence`] — the ten-disjoint-fifteen-day-sequences experiment
//!   protocol;
//! * [`archive`] — synthetic stand-ins for the four archive traces of the
//!   paper's Table 5 (Curie, ANL Intrepid, SDSC Blue, CTC SP2).
//!
//! ## The trace-store / interning contract
//!
//! Simulation-facing traces live in **structure-of-arrays columns**
//! ([`TraceColumns`]: dense `submit`/`runtime`/`estimate`/`cores`/`id`
//! slices) shared through cheap [`TraceView`] handles; the AoS [`Trace`]
//! remains the construction/transformation format, and the two present the
//! identical canonical `(submit, id)` order through [`TraceSource`] — so a
//! simulation over either layout is **bit-identical** (pinned by the
//! scheduler's `soa_bit_identity` suite at 1 and n worker threads).
//!
//! A [`TraceStore`] interns views by [`TraceKey`], a
//! `(generator, params, seed)` triple whose numeric parameters are stored
//! as exact bit patterns: keys are equal iff every generation input is
//! bit-identical, so distinct parameter points can never collide into one
//! cache entry, and a cache hit returns columns bit-identical to what
//! rebuilding would have produced. Every evaluation entry point above this
//! crate (the Table-4 grid, registry scenarios, the full-run pipeline)
//! passes one store through its scenario constructors and therefore builds
//! each distinct workload tuple **once** — e.g. the 18 Table-4 rows name
//! only 6 distinct `(generator, params, seed)` tuples, one per workload,
//! shared across the three evaluation conditions.

#![warn(missing_docs)]

pub mod archive;
pub mod feitelson;
pub mod lanes;
pub mod lublin;
pub mod partition;
pub mod registry;
pub mod sequence;
pub mod store;
pub mod swf;
pub mod trace;
pub mod transform;
pub mod tsafrir;
pub mod validate;

pub use archive::ArchivePlatform;
pub use feitelson::FeitelsonModel;
pub use lanes::JobLanes;
pub use lublin::LublinModel;
pub use partition::TraceSlice;
pub use registry::{ScenarioCalibration, ScenarioFamily, ScenarioParams, ScenarioRegistry};
pub use sequence::{extract_sequences, SequenceSpec};
pub use store::{TraceColumns, TraceKey, TraceStore, TraceView};
pub use swf::{
    parse_swf, parse_swf_reader, parse_swf_trace, parse_swf_trace_reader, parse_swf_with_header,
    parse_swf_with_header_reader, read_swf_file, write_swf, write_swf_trace, SwfHeader, SwfRecord,
};
pub use trace::{Trace, TraceSource, TraceSummary};
pub use tsafrir::TsafrirEstimates;
pub use validate::{validate_trace, ValidationReport};
