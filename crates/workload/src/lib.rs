//! # dynsched-workload
//!
//! Workload models and trace handling for the `dynsched` SC'17 reproduction:
//!
//! * [`trace`] — in-memory job traces with windowing/rebasing and summary
//!   statistics;
//! * [`swf`] — full Standard Workload Format reader/writer, so real
//!   Parallel Workloads Archive logs can be dropped into the harness;
//! * [`lublin`] — the Lublin–Feitelson rigid-job model used to train the
//!   paper's policies (sizes, size-correlated hyper-gamma runtimes, daily
//!   arrival cycle, load calibration);
//! * [`tsafrir`] — the Tsafrir et al. modal user runtime-estimate model;
//! * [`sequence`] — the ten-disjoint-fifteen-day-sequences experiment
//!   protocol;
//! * [`archive`] — synthetic stand-ins for the four archive traces of the
//!   paper's Table 5 (Curie, ANL Intrepid, SDSC Blue, CTC SP2).

#![warn(missing_docs)]

pub mod archive;
pub mod feitelson;
pub mod lublin;
pub mod sequence;
pub mod swf;
pub mod trace;
pub mod transform;
pub mod tsafrir;
pub mod validate;

pub use archive::ArchivePlatform;
pub use feitelson::FeitelsonModel;
pub use lublin::LublinModel;
pub use sequence::{extract_sequences, SequenceSpec};
pub use swf::{
    parse_swf, parse_swf_trace, parse_swf_with_header, write_swf, write_swf_trace, SwfHeader,
    SwfRecord,
};
pub use trace::{Trace, TraceSummary};
pub use tsafrir::TsafrirEstimates;
pub use validate::{validate_trace, ValidationReport};
