//! The Lublin–Feitelson rigid-job workload model.
//!
//! Lublin & Feitelson (JPDC 2003) model the stream of rigid jobs observed on
//! production parallel machines with three coupled components:
//!
//! 1. **Job size** (`n`): with probability `serial_prob` the job is serial;
//!    otherwise `log2(n)` follows a *two-stage uniform* distribution on
//!    `[ulow, umed] ∪ [umed, uhi]` (`uhi = log2(max_cores)`), and with
//!    probability `pow2_prob` the size is rounded to the nearest power of
//!    two. Small jobs dominate; a thin tail reaches machine scale.
//! 2. **Runtime** (`r`): `ln(r)` follows a *hyper-gamma* distribution whose
//!    mixing probability depends linearly on the job size,
//!    `p = pa·n + pb` (clamped to `[0,1]`) — so wide jobs skew long. The
//!    first component captures short jobs (~1 min median), the second long
//!    production runs (~3 h median).
//! 3. **Arrivals** (`s`): `ln(inter-arrival)` is gamma-distributed, with a
//!    daily cycle concentrating submissions in working hours.
//!
//! The upstream `lublin99.c` reference could not be consulted offline; the
//! constants below follow the published description and the values quoted in
//! secondary reproductions, and the *structure* (bimodal log-runtime,
//! size/runtime correlation, bursty day cycle, power-of-two sizes) is what
//! the scheduling results depend on. `arrival_scale` is an explicit knob for
//! calibrating offered load, used to match the utilizations in the paper's
//! Table 5 (see [`LublinModel::calibrated_to_load`]).

use crate::trace::Trace;
use dynsched_cluster::Job;
use dynsched_simkit::dist::{Gamma, Sample, TwoStageUniform};
use dynsched_simkit::Rng;
use serde::{Deserialize, Serialize};

/// Hour-of-day arrival weights (mean 1.0 after normalization): quiet nights,
/// a morning ramp, and a broad working-hours plateau — the qualitative shape
/// reported by Lublin & Feitelson for the daily cycle.
const DAILY_PROFILE: [f64; 24] = [
    0.40, 0.30, 0.25, 0.22, 0.22, 0.25, // 00–06
    0.35, 0.60, 1.00, 1.45, 1.70, 1.80, // 06–12
    1.75, 1.80, 1.85, 1.80, 1.65, 1.40, // 12–18
    1.10, 0.90, 0.75, 0.65, 0.55, 0.45, // 18–24
];

/// Configuration of the Lublin–Feitelson generator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LublinModel {
    /// Platform size; `uhi = log2(max_cores)`.
    pub max_cores: u32,
    /// Probability that a job is serial (one core).
    pub serial_prob: f64,
    /// Probability that a parallel job's size is a power of two.
    pub pow2_prob: f64,
    /// Lower bound of `log2(size)` for parallel jobs.
    pub ulow: f64,
    /// Break point of the two-stage uniform, as `uhi - umed_gap`.
    pub umed_gap: f64,
    /// Probability mass of the lower stage `[ulow, umed]`.
    pub uprob: f64,
    /// First (short-job) log-runtime gamma component: shape.
    pub a1: f64,
    /// First component: scale.
    pub b1: f64,
    /// Second (long-job) log-runtime gamma component: shape.
    pub a2: f64,
    /// Second component: scale.
    pub b2: f64,
    /// Slope of the size-dependent mixing probability `p = pa·n + pb`.
    pub pa: f64,
    /// Intercept of the mixing probability.
    pub pb: f64,
    /// Log-inter-arrival gamma: shape.
    pub aarr: f64,
    /// Log-inter-arrival gamma: scale.
    pub barr: f64,
    /// Multiplier on inter-arrival times; < 1 increases load. This is the
    /// calibration knob used to hit a target utilization.
    pub arrival_scale: f64,
    /// Cap on a single raw inter-arrival gap (seconds). `exp(gamma)` has a
    /// heavy right tail that occasionally emits multi-day silences real
    /// machines never show; the cap trims the tail while leaving the bulk
    /// of the fitted distribution untouched.
    pub max_gap: f64,
    /// Whether to modulate arrivals with the daily cycle.
    pub daily_cycle: bool,
    /// Hard cap on runtimes (s); production systems enforce a maximum
    /// walltime and the exp-gamma tail must not escape it.
    pub max_runtime: f64,
    /// Minimum runtime (s).
    pub min_runtime: f64,
}

impl LublinModel {
    /// The model with its published default constants, for a platform with
    /// `max_cores` cores.
    ///
    /// # Panics
    /// Panics if `max_cores < 2`.
    pub fn new(max_cores: u32) -> Self {
        assert!(max_cores >= 2, "the model needs a parallel machine");
        Self {
            max_cores,
            serial_prob: 0.2927,
            pow2_prob: 0.6686,
            ulow: 0.8,
            umed_gap: 3.0,
            uprob: 0.8604,
            a1: 4.2,
            b1: 0.94,
            a2: 312.0,
            b2: 0.03,
            pa: -0.0054,
            pb: 0.78,
            aarr: 10.23,
            barr: 0.4871,
            arrival_scale: 1.0,
            max_gap: 4.0 * 3_600.0,
            daily_cycle: true,
            max_runtime: 5.0 * 86_400.0,
            min_runtime: 1.0,
        }
    }

    /// Upper bound of `log2(size)`.
    fn uhi(&self) -> f64 {
        (self.max_cores as f64).log2()
    }

    /// Break point of the two-stage uniform.
    fn umed(&self) -> f64 {
        (self.uhi() - self.umed_gap)
            .max(self.ulow + 0.1)
            .min(self.uhi())
    }

    /// Sample a job size (number of cores).
    pub fn sample_cores(&self, rng: &mut Rng) -> u32 {
        if rng.chance(self.serial_prob) {
            return 1;
        }
        let dist = TwoStageUniform::new(self.ulow, self.umed(), self.uhi(), self.uprob);
        let log2_size = dist.sample(rng);
        let size = if rng.chance(self.pow2_prob) {
            2f64.powf(log2_size.round())
        } else {
            2f64.powf(log2_size).round()
        };
        (size as u32).clamp(1, self.max_cores)
    }

    /// Sample a runtime (seconds) for a job of `cores` cores.
    pub fn sample_runtime(&self, cores: u32, rng: &mut Rng) -> f64 {
        let p = (self.pa * cores as f64 + self.pb).clamp(0.0, 1.0);
        let ln_r = if rng.chance(p) {
            Gamma::new(self.a1, self.b1).sample(rng)
        } else {
            Gamma::new(self.a2, self.b2).sample(rng)
        };
        ln_r.exp().clamp(self.min_runtime, self.max_runtime)
    }

    /// Sample one raw inter-arrival gap (seconds), before the daily cycle.
    pub fn sample_raw_gap(&self, rng: &mut Rng) -> f64 {
        (Gamma::new(self.aarr, self.barr).sample(rng).exp() * self.arrival_scale).min(self.max_gap)
    }

    /// Arrival-intensity weight at time-of-day `tod` seconds (mean ≈ 1).
    pub fn daily_weight(tod: f64) -> f64 {
        let hour = ((tod.rem_euclid(86_400.0)) / 3_600.0) as usize % 24;
        let mean: f64 = DAILY_PROFILE.iter().sum::<f64>() / 24.0;
        DAILY_PROFILE[hour] / mean
    }

    /// Advance the arrival clock by one job, honouring the daily cycle via
    /// time-rescaling: the raw gap is "work" consumed at rate
    /// `daily_weight(t)`, so gaps stretch through the night and compress
    /// at midday. Integrating hour by hour (rather than scaling by the
    /// weight at the sampling instant) keeps long gaps from being
    /// multiplied wholesale by a single night-time weight.
    fn next_arrival(&self, now: f64, rng: &mut Rng) -> f64 {
        let mut gap = self.sample_raw_gap(rng);
        if !self.daily_cycle {
            return now + gap;
        }
        let mut t = now;
        loop {
            let w = Self::daily_weight(t).max(1e-3);
            let next_boundary = (t / 3_600.0).floor() * 3_600.0 + 3_600.0;
            let capacity = w * (next_boundary - t);
            if capacity >= gap {
                return t + gap / w;
            }
            gap -= capacity;
            t = next_boundary;
        }
    }

    /// Sample a `(runtime, cores)` pair with the model's size/runtime
    /// correlation (used by the training-tuple generator, which assigns its
    /// own arrival times).
    pub fn sample_shape(&self, rng: &mut Rng) -> (f64, u32) {
        let cores = self.sample_cores(rng);
        let runtime = self.sample_runtime(cores, rng);
        (runtime, cores)
    }

    /// Generate `count` jobs with arrivals starting at time 0. Estimates are
    /// initialised to the actual runtime; apply a
    /// [`TsafrirEstimates`](crate::tsafrir::TsafrirEstimates) model to
    /// obtain realistic user estimates.
    pub fn generate_jobs(&self, count: usize, rng: &mut Rng) -> Trace {
        let mut jobs = Vec::with_capacity(count);
        let mut now = 0.0;
        for id in 0..count {
            let (runtime, cores) = self.sample_shape(rng);
            jobs.push(Job::new(id as u32, now, runtime, runtime, cores));
            now = self.next_arrival(now, rng);
        }
        Trace::from_jobs(jobs)
    }

    /// Generate jobs until the arrival clock passes `span_seconds`.
    pub fn generate_span(&self, span_seconds: f64, rng: &mut Rng) -> Trace {
        let mut jobs = Vec::new();
        let mut now = 0.0;
        let mut id = 0u32;
        while now < span_seconds {
            let (runtime, cores) = self.sample_shape(rng);
            jobs.push(Job::new(id, now, runtime, runtime, cores));
            id += 1;
            now = self.next_arrival(now, rng);
        }
        Trace::from_jobs(jobs)
    }

    /// Empirical mean job area (core-seconds), estimated from `samples`
    /// draws. Used for load calibration.
    pub fn mean_area(&self, samples: usize, rng: &mut Rng) -> f64 {
        let total: f64 = (0..samples)
            .map(|_| {
                let (r, n) = self.sample_shape(rng);
                r * n as f64
            })
            .sum();
        total / samples as f64
    }

    /// Empirical mean inter-arrival gap (seconds) under the current
    /// `arrival_scale`, daily cycle included.
    pub fn mean_gap(&self, samples: usize, rng: &mut Rng) -> f64 {
        let mut now = 0.0;
        for _ in 0..samples {
            now = self.next_arrival(now, rng);
        }
        now / samples as f64
    }

    /// Return a copy whose `arrival_scale` is calibrated so the offered load
    /// (mean area / (capacity × mean gap)) approximates `target_load`.
    ///
    /// Job areas are heavy-tailed, so a point estimate from independent
    /// draws is unreliable; instead we iteratively probe with generated
    /// traces of `probe_jobs` jobs and rescale until the measured offered
    /// load converges on the target.
    ///
    /// # Panics
    /// Panics if `target_load` is not in `(0, 1.5]`.
    pub fn calibrated_to_load(&self, target_load: f64, rng: &mut Rng) -> Self {
        assert!(
            target_load > 0.0 && target_load <= 1.5,
            "target load {target_load} out of range"
        );
        const PROBE_JOBS: usize = 30_000;
        let mut out = *self;
        for _ in 0..3 {
            let probe = out.generate_jobs(PROBE_JOBS, rng);
            let load = probe
                .summary(self.max_cores)
                .expect("probe trace is non-empty")
                .offered_load;
            if !load.is_finite() || load <= 0.0 {
                break;
            }
            out.arrival_scale *= load / target_load;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_respect_bounds() {
        let m = LublinModel::new(256);
        let mut rng = Rng::new(1);
        for _ in 0..20_000 {
            let n = m.sample_cores(&mut rng);
            assert!((1..=256).contains(&n));
        }
    }

    #[test]
    fn serial_fraction_matches_parameter() {
        let m = LublinModel::new(256);
        let mut rng = Rng::new(2);
        let n = 50_000;
        let serial = (0..n).filter(|_| m.sample_cores(&mut rng) == 1).count();
        let frac = serial as f64 / n as f64;
        // serial_prob plus a small contribution from parallel draws rounding
        // to 1 (log2 size < 0.5 with pow2 rounding).
        assert!(frac > 0.25 && frac < 0.40, "serial fraction {frac}");
    }

    #[test]
    fn pow2_sizes_are_frequent() {
        let m = LublinModel::new(256);
        let mut rng = Rng::new(3);
        let n = 50_000;
        let pow2 = (0..n)
            .filter(|_| {
                let c = m.sample_cores(&mut rng);
                c > 1 && c.is_power_of_two()
            })
            .count();
        // Of the ~70% parallel jobs, ~2/3 should be powers of two, plus
        // accidental hits from the rounded branch.
        let frac = pow2 as f64 / n as f64;
        assert!(frac > 0.40, "pow2 fraction {frac}");
    }

    #[test]
    fn small_sizes_dominate() {
        let m = LublinModel::new(256);
        let mut rng = Rng::new(4);
        let n = 50_000;
        let small = (0..n).filter(|_| m.sample_cores(&mut rng) <= 32).count();
        assert!(small as f64 / n as f64 > 0.75);
    }

    #[test]
    fn runtimes_are_clamped() {
        let m = LublinModel::new(256);
        let mut rng = Rng::new(5);
        for _ in 0..20_000 {
            let r = m.sample_runtime(16, &mut rng);
            assert!(r >= m.min_runtime && r <= m.max_runtime);
        }
    }

    #[test]
    fn wide_jobs_run_longer_in_median() {
        let m = LublinModel::new(256);
        let mut rng = Rng::new(6);
        let sample_median = |cores: u32, rng: &mut Rng| {
            let mut xs: Vec<f64> = (0..5_001).map(|_| m.sample_runtime(cores, rng)).collect();
            xs.sort_by(f64::total_cmp);
            xs[2_500]
        };
        let narrow = sample_median(1, &mut rng);
        let wide = sample_median(200, &mut rng);
        assert!(
            wide > narrow * 3.0,
            "wide jobs should skew long: narrow {narrow}, wide {wide}"
        );
    }

    #[test]
    fn log_runtime_is_bimodal() {
        // Short component median ~ e^{a1*b1} ≈ 52 s; long ~ e^{a2*b2} ≈ 3.2 h.
        let m = LublinModel::new(256);
        let mut rng = Rng::new(7);
        let mut short = 0;
        let mut long = 0;
        for _ in 0..20_000 {
            let r = m.sample_runtime(1, &mut rng);
            if r < 600.0 {
                short += 1;
            }
            if r > 3_600.0 {
                long += 1;
            }
        }
        assert!(short > 5_000, "expected a strong short mode, got {short}");
        assert!(long > 2_000, "expected a long tail, got {long}");
    }

    #[test]
    fn arrivals_are_increasing_and_positive() {
        let m = LublinModel::new(256);
        let mut rng = Rng::new(8);
        let t = m.generate_jobs(500, &mut rng);
        let jobs = t.jobs();
        assert_eq!(jobs.len(), 500);
        for w in jobs.windows(2) {
            assert!(w[1].submit >= w[0].submit);
        }
        assert_eq!(jobs[0].submit, 0.0);
    }

    #[test]
    fn daily_weight_is_normalized_and_peaks_in_working_hours() {
        let mean: f64 = (0..24)
            .map(|h| LublinModel::daily_weight(h as f64 * 3600.0))
            .sum::<f64>()
            / 24.0;
        assert!((mean - 1.0).abs() < 1e-9);
        let night = LublinModel::daily_weight(3.0 * 3600.0);
        let midday = LublinModel::daily_weight(14.0 * 3600.0);
        assert!(midday > 3.0 * night);
    }

    #[test]
    fn arrival_scale_scales_gaps() {
        let mut m = LublinModel::new(256);
        m.daily_cycle = false;
        m.max_gap = f64::INFINITY; // the cap truncates scales differently
        let mut rng = Rng::new(9);
        let base = m.mean_gap(20_000, &mut rng);
        m.arrival_scale = 0.5;
        let mut rng = Rng::new(9);
        let halved = m.mean_gap(20_000, &mut rng);
        assert!(
            (halved / base - 0.5).abs() < 0.02,
            "ratio {}",
            halved / base
        );
    }

    #[test]
    fn calibration_hits_target_load() {
        let m = LublinModel::new(256);
        let mut rng = Rng::new(10);
        let calibrated = m.calibrated_to_load(0.7, &mut rng);
        let trace = calibrated.generate_jobs(30_000, &mut rng);
        let load = trace.summary(256).unwrap().offered_load;
        // Heavy-tailed areas make even long-horizon loads noisy; the
        // calibration should land within ±35% of the target.
        assert!(
            load > 0.45 && load < 0.95,
            "calibrated load {load}, expected ≈ 0.7"
        );
    }

    #[test]
    fn generate_span_covers_requested_horizon() {
        let m = LublinModel::new(64);
        let mut rng = Rng::new(11);
        let t = m.generate_span(86_400.0, &mut rng);
        assert!(!t.is_empty());
        assert!(t.end_time().unwrap() < 86_400.0 + 1.0);
    }

    #[test]
    fn shapes_are_deterministic_per_seed() {
        let m = LublinModel::new(256);
        let mut a = Rng::new(12);
        let mut b = Rng::new(12);
        for _ in 0..100 {
            assert_eq!(m.sample_shape(&mut a), m.sample_shape(&mut b));
        }
    }

    #[test]
    fn model_for_1024_cores_reaches_wider_sizes() {
        let m = LublinModel::new(1024);
        let mut rng = Rng::new(13);
        let max = (0..50_000).map(|_| m.sample_cores(&mut rng)).max().unwrap();
        assert!(
            max > 256,
            "1024-core model should emit wide jobs, max {max}"
        );
    }
}
