//! Per-shard trace partitioning for the federation layer.
//!
//! A federated simulation routes every job of one submit-sorted trace to
//! one of N clusters and then runs each cluster's jobs through its own
//! engine instance. The shard-local job sequence is a *subsequence* of the
//! parent trace — same jobs, same field bits, original relative order —
//! which [`TraceSlice`] presents as a [`TraceSource`] without copying a
//! single column: position `i` of the slice delegates to parent position
//! `positions[i]`.
//!
//! Because the parent is submit-sorted and a routing pass scans it in
//! order, any routed position list is automatically submit-sorted too, so
//! a slice satisfies the engine's arrival-cursor contract for free. The
//! constructor still verifies the invariant (debug builds verify the full
//! order; release builds trust the router).
//!
//! Determinism: a slice adds no state of its own. Simulating
//! `TraceSlice::new(&trace, positions)` is bit-identical to simulating an
//! owned trace built from the same jobs — the `federation_bit_identity`
//! suite pins this via the 1-shard == reference oracle pin.

use crate::trace::TraceSource;
use dynsched_cluster::Job;

/// A borrowed subsequence of a parent [`TraceSource`]: the trace a single
/// federation shard schedules.
///
/// `positions[i]` is the parent trace position backing slice position `i`.
/// Positions must be strictly increasing (a subsequence, not a shuffle):
/// relative submit order — including the equal-submit-time tie order the
/// engine inherits from trace order — is exactly the parent's.
#[derive(Debug, Clone, Copy)]
pub struct TraceSlice<'a, T: TraceSource> {
    parent: &'a T,
    positions: &'a [u32],
}

impl<'a, T: TraceSource> TraceSlice<'a, T> {
    /// Borrow the subsequence of `parent` at `positions`.
    ///
    /// # Panics
    /// Panics if any position is out of bounds, or (debug builds) if the
    /// positions are not strictly increasing.
    pub fn new(parent: &'a T, positions: &'a [u32]) -> Self {
        if let Some(&last) = positions.last() {
            assert!(
                (last as usize) < parent.len(),
                "slice position {last} out of bounds for a {}-job trace",
                parent.len()
            );
        }
        debug_assert!(
            positions.windows(2).all(|w| w[0] < w[1]),
            "slice positions must be strictly increasing"
        );
        Self { parent, positions }
    }

    /// The parent positions backing this slice, in slice order.
    pub fn positions(&self) -> &'a [u32] {
        self.positions
    }

    /// Parent trace position backing slice position `i`.
    #[inline]
    pub fn parent_position(&self, i: usize) -> usize {
        self.positions[i] as usize
    }
}

impl<T: TraceSource> TraceSource for TraceSlice<'_, T> {
    fn len(&self) -> usize {
        self.positions.len()
    }

    #[inline]
    fn id(&self, i: usize) -> u32 {
        self.parent.id(self.positions[i] as usize)
    }

    #[inline]
    fn submit(&self, i: usize) -> f64 {
        self.parent.submit(self.positions[i] as usize)
    }

    #[inline]
    fn runtime(&self, i: usize) -> f64 {
        self.parent.runtime(self.positions[i] as usize)
    }

    #[inline]
    fn estimate(&self, i: usize) -> f64 {
        self.parent.estimate(self.positions[i] as usize)
    }

    #[inline]
    fn cores(&self, i: usize) -> u32 {
        self.parent.cores(self.positions[i] as usize)
    }

    #[inline]
    fn job(&self, i: usize) -> Job {
        self.parent.job(self.positions[i] as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Trace;

    fn trace() -> Trace {
        Trace::from_jobs(
            (0..10)
                .map(|i| Job::new(i, i as f64 * 10.0, 100.0 + i as f64, 120.0, 1 + i % 3))
                .collect(),
        )
    }

    #[test]
    fn slice_delegates_every_field() {
        let t = trace();
        let positions = [1u32, 4, 7, 9];
        let s = TraceSlice::new(&t, &positions);
        assert_eq!(s.len(), 4);
        for (i, &p) in positions.iter().enumerate() {
            assert_eq!(s.id(i), t.id(p as usize));
            assert_eq!(s.submit(i), t.submit(p as usize));
            assert_eq!(s.runtime(i), t.runtime(p as usize));
            assert_eq!(s.estimate(i), t.estimate(p as usize));
            assert_eq!(s.cores(i), t.cores(p as usize));
            assert_eq!(s.job(i), t.job(p as usize));
            assert_eq!(s.parent_position(i), p as usize);
        }
    }

    #[test]
    fn empty_and_full_slices() {
        let t = trace();
        let none: [u32; 0] = [];
        let s = TraceSlice::new(&t, &none);
        assert!(s.is_empty());
        let all: Vec<u32> = (0..t.len() as u32).collect();
        let s = TraceSlice::new(&t, &all);
        assert_eq!(s.len(), t.len());
        assert_eq!(s.job(3), t.job(3));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_position_is_rejected() {
        let t = trace();
        let bad = [0u32, 10];
        let _ = TraceSlice::new(&t, &bad);
    }
}
