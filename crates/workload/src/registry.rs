//! Named scenario families: the workload catalogue behind "as many
//! scenarios as you can imagine".
//!
//! The paper evaluates on exactly two workload shapes (the Lublin model
//! and archive stand-ins). Everything else the harness can express —
//! heavy-tailed runtimes, bursty arrivals, exaggerated diurnal cycles, the
//! structurally different Feitelson'96 mix, replay windows of real SWF
//! logs — lives here as a [`ScenarioFamily`]: a named, seeded, parameterized
//! generator that any evaluation entry point (experiment grids, load
//! sweeps, the full-run pipeline, the `dynsched scenarios` CLI) can
//! reference *by name*. Families build through the
//! [`TraceStore`], so two entry points naming the same
//! `(family, params, seed)` share one build — the same interning contract
//! the Table-4 grid uses.

use crate::feitelson::FeitelsonModel;
use crate::lublin::LublinModel;
use crate::sequence::{extract_sequences, SequenceError, SequenceSpec};
use crate::store::{TraceKey, TraceStore, TraceView};
use crate::trace::Trace;
use crate::transform::burstify;
use crate::tsafrir::TsafrirEstimates;
use dynsched_cluster::FaultProfile;
use dynsched_simkit::Rng;
use std::sync::Arc;

/// Shared knobs every family understands.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScenarioParams {
    /// Platform width (cores); also the job-size ceiling.
    pub cores: u32,
    /// Length of the generated trace, days.
    pub span_days: f64,
    /// Offered-load target for the load-calibrated families.
    pub target_load: f64,
}

impl Default for ScenarioParams {
    fn default() -> Self {
        Self {
            cores: 256,
            span_days: 30.0,
            target_load: 0.8,
        }
    }
}

impl ScenarioParams {
    /// Span in seconds.
    pub fn span_seconds(&self) -> f64 {
        self.span_days * 86_400.0
    }
}

/// Calibration summary of one family at one parameter point — the numbers
/// the `dynsched scenarios` listing prints so an operator can see what a
/// family actually generates before running a study on it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScenarioCalibration {
    /// Jobs in the generated trace.
    pub jobs: usize,
    /// Mean submissions per day.
    pub jobs_per_day: f64,
    /// Offered load (area / capacity·span) — the utilization ceiling.
    pub offered_load: f64,
    /// Coefficient of variation of actual runtimes (std/mean); > 1 marks a
    /// heavy tail.
    pub runtime_cv: f64,
    /// Mean requested cores.
    pub mean_cores: f64,
    /// Fraction of single-core jobs.
    pub serial_fraction: f64,
}

type BuildFn = Arc<dyn Fn(&ScenarioParams, &mut Rng) -> Trace + Send + Sync>;

/// One named workload family: a seeded generator plus the metadata the
/// registry listing shows.
#[derive(Clone)]
pub struct ScenarioFamily {
    name: String,
    description: String,
    /// Distinguishes families that share a name but capture different
    /// state in their build closure (a replaced registry entry, two
    /// `swf_replay` families over different logs): the salt joins the
    /// interning key, so such families never serve each other's cached
    /// traces. Plain `custom` closures default to 0; closures capturing
    /// data should set a content-derived salt (see
    /// [`ScenarioFamily::with_salt`]).
    salt: u64,
    /// Optional fault profile evaluations of this family should run
    /// under. Advisory metadata for the evaluation layer — it does *not*
    /// join the interning key, because the generated trace is unaffected
    /// by failures (only the simulation of it is).
    fault: Option<FaultProfile>,
    build: BuildFn,
}

impl std::fmt::Debug for ScenarioFamily {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScenarioFamily")
            .field("name", &self.name)
            .finish_non_exhaustive()
    }
}

impl ScenarioFamily {
    /// A custom family from a build closure. The closure must be a pure
    /// function of `(params, rng)` — the interning contract depends on
    /// it. A closure that captures data (a trace, a lookup table) must
    /// also set a content-derived [`ScenarioFamily::with_salt`], or two
    /// same-named families over different data would share cache entries.
    pub fn custom(
        name: impl Into<String>,
        description: impl Into<String>,
        build: impl Fn(&ScenarioParams, &mut Rng) -> Trace + Send + Sync + 'static,
    ) -> Self {
        Self {
            name: name.into(),
            description: description.into(),
            salt: 0,
            fault: None,
            build: Arc::new(build),
        }
    }

    /// Set the key salt (see the `salt` field); returns `self` for
    /// chaining onto [`ScenarioFamily::custom`].
    pub fn with_salt(mut self, salt: u64) -> Self {
        self.salt = salt;
        self
    }

    /// Attach a fault profile: evaluation entry points that honour the
    /// registry (the `dynsched scenarios` CLI foremost) run this family's
    /// experiments under deterministic failure schedules expanded from the
    /// profile. An empty profile detaches ([`FaultProfile::is_empty`]).
    pub fn with_fault_profile(mut self, fault: FaultProfile) -> Self {
        self.fault = (!fault.is_empty()).then_some(fault);
        self
    }

    /// The fault profile attached to this family, if any.
    pub fn fault_profile(&self) -> Option<&FaultProfile> {
        self.fault.as_ref()
    }

    /// A replay family over a real (or pre-parsed) SWF trace: each seed
    /// selects a deterministic `span_days` window of the log, capped to the
    /// platform width and rebased to start at 0. The key salt is a
    /// fingerprint of the log's jobs, so two replay families sharing a
    /// name but wrapping different logs never share store entries.
    pub fn swf_replay(name: impl Into<String>, source: Trace) -> Self {
        let name = name.into();
        let description = format!("replay windows of an SWF log ({} jobs)", source.len());
        let salt = trace_fingerprint(&source);
        Self::custom(name, description, move |params, rng| {
            let capped = source.capped_to(params.cores);
            let span = capped.span();
            let window = params.span_seconds().min(span);
            let slack = (span - window).max(0.0);
            let start = capped.start_time().unwrap_or(0.0)
                + if slack > 0.0 {
                    rng.range_f64(0.0, slack)
                } else {
                    0.0
                };
            capped.window(start, start + window).rebased(0.0)
        })
        .with_salt(salt)
    }

    /// The family's registry name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// One-line description for listings.
    pub fn description(&self) -> &str {
        &self.description
    }

    /// The interning key of this family at `(params, seed)`: family name +
    /// salt + seed + every numeric parameter as exact bits. Distinct
    /// parameter points (or same-named families over different captured
    /// data) therefore never share a store entry.
    pub fn key(&self, params: &ScenarioParams, seed: u64) -> TraceKey {
        TraceKey::new(format!("scenario/{}", self.name), seed)
            .with_u64(self.salt)
            .with_u64(params.cores as u64)
            .with_f64(params.span_days)
            .with_f64(params.target_load)
    }

    /// Generate the family's trace at `(params, seed)` without interning.
    /// Deterministic: the stream is derived from the seed and the family
    /// name, so two families given the same seed still diverge.
    pub fn generate(&self, params: &ScenarioParams, seed: u64) -> Trace {
        let mut rng = Rng::new(seed ^ fxhash(&self.name));
        (self.build)(params, &mut rng)
    }

    /// The family's trace at `(params, seed)` through `store`: built once
    /// per distinct key, shared everywhere else.
    pub fn view(&self, store: &TraceStore, params: &ScenarioParams, seed: u64) -> TraceView {
        store.get_or_build(self.key(params, seed), || self.generate(params, seed))
    }

    /// Extract `spec.count` experiment sequences from the family's trace
    /// at `(params, seed)`, interned as a set (the sequence spec joins the
    /// key, since it changes the windows).
    pub fn sequences(
        &self,
        store: &TraceStore,
        params: &ScenarioParams,
        spec: &SequenceSpec,
        seed: u64,
    ) -> Result<Vec<TraceView>, SequenceError> {
        let key = self
            .key(params, seed)
            .with_u64(spec.count as u64)
            .with_f64(spec.days)
            .with_u64(spec.min_jobs as u64);
        // The base trace goes through the store too, so a preceding
        // calibration (or any other entry point at the same point) and
        // this extraction share one generation. Fetched before the set
        // intern: builders must not re-enter the store.
        let base = self.view(store, params, seed);
        Ok(store
            .get_or_try_build_set(key, || extract_sequences(&base.to_trace(), spec))?
            .to_vec())
    }

    /// Measure the family at one parameter point (generates the trace via
    /// `store`, so a later evaluation at the same point reuses the build).
    pub fn calibration(
        &self,
        store: &TraceStore,
        params: &ScenarioParams,
        seed: u64,
    ) -> ScenarioCalibration {
        let view = self.view(store, params, seed);
        let n = view.len();
        if n == 0 {
            return ScenarioCalibration {
                jobs: 0,
                jobs_per_day: 0.0,
                offered_load: 0.0,
                runtime_cv: 0.0,
                mean_cores: 0.0,
                serial_fraction: 0.0,
            };
        }
        let runtimes = view.runtimes();
        let mean_rt = runtimes.iter().sum::<f64>() / n as f64;
        let var_rt = runtimes.iter().map(|r| (r - mean_rt).powi(2)).sum::<f64>() / n as f64;
        let summary = view.summary(params.cores).expect("non-empty");
        let span_days = (summary.span_seconds / 86_400.0).max(f64::MIN_POSITIVE);
        ScenarioCalibration {
            jobs: n,
            jobs_per_day: n as f64 / span_days,
            offered_load: summary.offered_load,
            runtime_cv: if mean_rt > 0.0 {
                var_rt.sqrt() / mean_rt
            } else {
                0.0
            },
            mean_cores: summary.mean_cores,
            serial_fraction: summary.serial_fraction,
        }
    }
}

/// The catalogue of scenario families, addressable by name.
#[derive(Debug, Clone, Default)]
pub struct ScenarioRegistry {
    families: Vec<ScenarioFamily>,
}

impl ScenarioRegistry {
    /// An empty registry (use [`ScenarioRegistry::builtin`] for the stock
    /// catalogue).
    pub fn new() -> Self {
        Self::default()
    }

    /// The built-in catalogue. Every family is deterministic in
    /// `(params, seed)` and honours `params.cores` as the job-size
    /// ceiling.
    pub fn builtin() -> Self {
        let mut reg = Self::new();
        reg.register(ScenarioFamily::custom(
            "lublin",
            "Lublin-Feitelson reference mix, load-calibrated, daily cycle",
            |p: &ScenarioParams, rng: &mut Rng| {
                let model = LublinModel::new(p.cores).calibrated_to_load(p.target_load, rng);
                model.generate_span(p.span_seconds(), rng)
            },
        ));
        reg.register(ScenarioFamily::custom(
            "lublin-tsafrir",
            "Lublin mix with Tsafrir modal user estimates attached",
            |p: &ScenarioParams, rng: &mut Rng| {
                let model = LublinModel::new(p.cores).calibrated_to_load(p.target_load, rng);
                let trace = model.generate_span(p.span_seconds(), rng);
                TsafrirEstimates::with_max_estimate(model.max_runtime).apply(&trace, rng)
            },
        ));
        reg.register(ScenarioFamily::custom(
            "heavy-tail",
            "Lublin mix with a boosted long-runtime gamma component (runtime CV >> 1)",
            |p: &ScenarioParams, rng: &mut Rng| {
                let mut base = LublinModel::new(p.cores);
                // Stretch the long-job component of the hyper-gamma in log
                // space (and lift the walltime cap so the clamp does not
                // eat the new tail): the short-job mode stays put, so the
                // runtime distribution spreads — CV well above the
                // reference mix.
                base.b2 *= 1.3;
                base.max_runtime *= 4.0;
                let model = base.calibrated_to_load(p.target_load, rng);
                model.generate_span(p.span_seconds(), rng)
            },
        ));
        reg.register(ScenarioFamily::custom(
            "bursty",
            "Lublin mix compressed into 4h-period on/off arrival bursts (20% duty)",
            |p: &ScenarioParams, rng: &mut Rng| {
                let mut base = LublinModel::new(p.cores);
                base.daily_cycle = false;
                let model = base.calibrated_to_load(p.target_load, rng);
                let trace = model.generate_span(p.span_seconds(), rng);
                burstify(&trace, 4.0 * 3_600.0, 0.2)
            },
        ));
        reg.register(ScenarioFamily::custom(
            "diurnal",
            "Lublin mix with an exaggerated working-hours concentration",
            |p: &ScenarioParams, rng: &mut Rng| {
                let model = LublinModel::new(p.cores).calibrated_to_load(p.target_load, rng);
                let trace = model.generate_span(p.span_seconds(), rng);
                // On top of the model's own daily cycle, remap each day
                // into its first ~11 hours: nights go silent, the midday
                // peak sharpens.
                burstify(&trace, 86_400.0, 0.45)
            },
        ));
        reg.register(ScenarioFamily::custom(
            "feitelson96",
            "Feitelson'96 harmonic-size mix with job repetition, Tsafrir estimates",
            |p: &ScenarioParams, rng: &mut Rng| {
                let model = FeitelsonModel::new(p.cores);
                // The model generates by count; convert the requested span
                // through its mean session inter-arrival time.
                let count = (p.span_seconds() / model.mean_interarrival).ceil().max(1.0) as usize;
                let trace = model.generate_jobs(count, rng);
                TsafrirEstimates::with_max_estimate(model.max_runtime).apply(&trace, rng)
            },
        ));
        reg
    }

    /// Add (or replace, by name) a family.
    pub fn register(&mut self, family: ScenarioFamily) {
        if let Some(slot) = self.families.iter_mut().find(|f| f.name == family.name) {
            *slot = family;
        } else {
            self.families.push(family);
        }
    }

    /// Look up a family by name (case-insensitive).
    pub fn get(&self, name: &str) -> Option<&ScenarioFamily> {
        self.families
            .iter()
            .find(|f| f.name.eq_ignore_ascii_case(name))
    }

    /// All families, in registration order.
    pub fn families(&self) -> &[ScenarioFamily] {
        &self.families
    }

    /// All family names, in registration order.
    pub fn names(&self) -> Vec<&str> {
        self.families.iter().map(|f| f.name.as_str()).collect()
    }
}

/// Content fingerprint of a trace (FNV-1a over every job's exact field
/// bits), used as the key salt of data-capturing families.
fn trace_fingerprint(trace: &Trace) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |x: u64| {
        h ^= x;
        h = h.wrapping_mul(0x1_0000_0000_01b3);
    };
    for j in trace.jobs() {
        mix(j.id as u64);
        mix(j.submit.to_bits());
        mix(j.runtime.to_bits());
        mix(j.estimate.to_bits());
        mix(j.cores as u64);
    }
    h
}

/// Tiny deterministic string hash (FNV-1a), used to give each family (and
/// each archive platform) a distinct stream from the same user seed.
pub(crate) fn fxhash(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1_0000_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_params() -> ScenarioParams {
        ScenarioParams {
            cores: 64,
            span_days: 3.0,
            target_load: 0.8,
        }
    }

    #[test]
    fn builtin_catalogue_has_the_documented_families() {
        let reg = ScenarioRegistry::builtin();
        for name in [
            "lublin",
            "lublin-tsafrir",
            "heavy-tail",
            "bursty",
            "diurnal",
            "feitelson96",
        ] {
            assert!(reg.get(name).is_some(), "missing family {name}");
        }
        assert!(reg.get("LUBLIN").is_some(), "lookup is case-insensitive");
        assert!(reg.get("no-such-family").is_none());
    }

    #[test]
    fn families_are_deterministic_and_seed_sensitive() {
        let reg = ScenarioRegistry::builtin();
        let p = quick_params();
        for family in reg.families() {
            let a = family.generate(&p, 7);
            let b = family.generate(&p, 7);
            let c = family.generate(&p, 8);
            assert_eq!(a, b, "{} not deterministic", family.name());
            assert_ne!(a, c, "{} ignores the seed", family.name());
            assert!(!a.is_empty(), "{} generated no jobs", family.name());
            for j in a.jobs() {
                assert!(
                    j.cores <= p.cores,
                    "{} exceeded the platform",
                    family.name()
                );
            }
        }
    }

    #[test]
    fn same_seed_different_families_diverge() {
        let reg = ScenarioRegistry::builtin();
        let p = quick_params();
        let a = reg.get("lublin").unwrap().generate(&p, 5);
        let b = reg.get("bursty").unwrap().generate(&p, 5);
        assert_ne!(a, b);
    }

    #[test]
    fn store_shares_builds_within_and_across_entry_points() {
        let reg = ScenarioRegistry::builtin();
        let store = TraceStore::new();
        let p = quick_params();
        let family = reg.get("bursty").unwrap();
        let a = family.view(&store, &p, 3);
        let b = family.view(&store, &p, 3);
        assert!(a.shares_storage(&b));
        assert_eq!(store.builds(), 1);
        // A different parameter point builds separately.
        let p2 = ScenarioParams {
            target_load: 0.5,
            ..p
        };
        let c = family.view(&store, &p2, 3);
        assert!(!a.shares_storage(&c));
        assert_eq!(store.builds(), 2);
    }

    #[test]
    fn heavy_tail_is_heavier_than_reference() {
        let reg = ScenarioRegistry::builtin();
        let store = TraceStore::new();
        let p = ScenarioParams {
            cores: 64,
            span_days: 6.0,
            target_load: 0.8,
        };
        let reference = reg.get("lublin").unwrap().calibration(&store, &p, 11);
        let heavy = reg.get("heavy-tail").unwrap().calibration(&store, &p, 11);
        assert!(
            heavy.runtime_cv > reference.runtime_cv,
            "heavy-tail CV {} should exceed reference CV {}",
            heavy.runtime_cv,
            reference.runtime_cv
        );
    }

    #[test]
    fn bursty_concentrates_arrivals() {
        let reg = ScenarioRegistry::builtin();
        let p = quick_params();
        let t = reg.get("bursty").unwrap().generate(&p, 9);
        let period = 4.0 * 3_600.0;
        for j in t.jobs() {
            assert!(j.submit.rem_euclid(period) <= 0.2 * period + 1e-6);
        }
    }

    #[test]
    fn swf_replay_windows_come_from_the_log() {
        use dynsched_cluster::Job;
        let log = Trace::from_jobs(
            (0..500)
                .map(|i| {
                    Job::new(
                        i,
                        i as f64 * 600.0,
                        30.0 + i as f64,
                        60.0 + i as f64,
                        1 + i % 8,
                    )
                })
                .collect(),
        );
        let family = ScenarioFamily::swf_replay("ctc-replay", log.clone());
        let p = ScenarioParams {
            cores: 8,
            span_days: 1.0,
            target_load: 0.0,
        };
        let w = family.generate(&p, 2);
        assert!(!w.is_empty());
        assert_eq!(w.start_time(), Some(0.0), "windows are rebased");
        assert!(w.span() <= 86_400.0 + 1e-6);
        // Every (runtime, cores) shape exists in the source log.
        for j in w.jobs() {
            assert!(log
                .jobs()
                .iter()
                .any(|l| l.runtime == j.runtime && l.cores == j.cores));
        }
        // Registered custom families are addressable by name.
        let mut reg = ScenarioRegistry::builtin();
        reg.register(family);
        assert!(reg.get("ctc-replay").is_some());
    }

    #[test]
    fn same_named_families_over_different_data_never_share_entries() {
        use dynsched_cluster::Job;
        let log = |runtime: f64| {
            Trace::from_jobs(
                (0..50)
                    .map(|i| Job::new(i, i as f64 * 400.0, runtime, runtime, 1))
                    .collect(),
            )
        };
        let store = TraceStore::new();
        let p = ScenarioParams {
            cores: 8,
            span_days: 0.1,
            target_load: 0.0,
        };
        // A registry whose "replay" entry is later replaced by a family
        // over a different log: the shared store must not serve the old
        // log's windows for the new family.
        let a = ScenarioFamily::swf_replay("replay", log(30.0));
        let b = ScenarioFamily::swf_replay("replay", log(900.0));
        let va = a.view(&store, &p, 1);
        let vb = b.view(&store, &p, 1);
        assert!(!va.shares_storage(&vb));
        assert_ne!(va, vb);
        assert_eq!(store.builds(), 2);
        // Identical data under the same name still interns once.
        let a2 = ScenarioFamily::swf_replay("replay", log(30.0));
        assert!(a2.view(&store, &p, 1).shares_storage(&va));
    }

    #[test]
    fn sequences_reuse_the_calibrated_base_trace() {
        let reg = ScenarioRegistry::builtin();
        let store = TraceStore::new();
        let p = quick_params();
        let spec = SequenceSpec {
            count: 2,
            days: 1.0,
            min_jobs: 2,
        };
        let family = reg.get("lublin").unwrap();
        // Calibration interns the base trace; a later sequence extraction
        // at the same point must reuse that build, adding only the
        // windowed set.
        family.calibration(&store, &p, 31);
        assert_eq!(store.builds(), 1);
        family.sequences(&store, &p, &spec, 31).unwrap();
        assert_eq!(store.builds(), 2, "base trace must not regenerate");
        assert_eq!(store.hits(), 1);
    }

    #[test]
    fn fault_profiles_attach_without_changing_the_interning_key() {
        let reg = ScenarioRegistry::builtin();
        let p = quick_params();
        let plain = reg.get("lublin").unwrap().clone();
        assert!(plain.fault_profile().is_none());
        let faulty = plain
            .clone()
            .with_fault_profile(FaultProfile::failures(50_000.0, 3_600.0, 8, 42));
        assert!(faulty.fault_profile().is_some());
        // Same trace, same key: the profile shapes the simulation, not
        // the workload.
        assert_eq!(faulty.key(&p, 7), plain.key(&p, 7));
        assert_eq!(faulty.generate(&p, 7), plain.generate(&p, 7));
        // An empty profile detaches.
        let detached = faulty.with_fault_profile(FaultProfile::none());
        assert!(detached.fault_profile().is_none());
    }

    #[test]
    fn calibration_reports_sane_numbers() {
        let reg = ScenarioRegistry::builtin();
        let store = TraceStore::new();
        let p = quick_params();
        for family in reg.families() {
            let c = family.calibration(&store, &p, 17);
            assert!(c.jobs > 0, "{}", family.name());
            assert!(c.jobs_per_day > 0.0);
            assert!(c.offered_load.is_finite() && c.offered_load > 0.0);
            assert!(c.runtime_cv.is_finite() && c.runtime_cv > 0.0);
            assert!(c.mean_cores >= 1.0);
            assert!((0.0..=1.0).contains(&c.serial_fraction));
        }
    }

    #[test]
    fn sequences_intern_as_a_set() {
        let reg = ScenarioRegistry::builtin();
        let store = TraceStore::new();
        let p = quick_params();
        let spec = SequenceSpec {
            count: 2,
            days: 1.0,
            min_jobs: 2,
        };
        let family = reg.get("lublin").unwrap();
        let a = family.sequences(&store, &p, &spec, 23).unwrap();
        let b = family.sequences(&store, &p, &spec, 23).unwrap();
        assert_eq!(a.len(), 2);
        for (x, y) in a.iter().zip(&b) {
            assert!(x.shares_storage(y));
        }
        // A different spec re-windows: distinct entry.
        let spec2 = SequenceSpec {
            count: 2,
            days: 1.5,
            min_jobs: 2,
        };
        let c = family.sequences(&store, &p, &spec2, 23).unwrap();
        assert!(!a[0].shares_storage(&c[0]));
    }
}
