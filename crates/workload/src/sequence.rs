//! Extraction of dynamic-scheduling experiment sequences.
//!
//! The paper's evaluation protocol (§4.2, §4.3): a *dynamic scheduling
//! experiment* simulates ten distinct, non-overlapping sequences of tasks
//! from one workload, each sequence containing all submissions over a
//! fifteen-day period. This module slices a long trace into such sequences,
//! rebasing every sequence so its window starts at time 0.

use crate::trace::Trace;
use serde::{Deserialize, Serialize};

/// Parameters of the sequence-extraction protocol.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SequenceSpec {
    /// Number of disjoint sequences (paper: 10).
    pub count: usize,
    /// Sequence length in days (paper: 15).
    pub days: f64,
    /// Minimum jobs for a window to be usable (guards against trace gaps,
    /// e.g. machine maintenance periods in the archive logs).
    pub min_jobs: usize,
}

impl Default for SequenceSpec {
    fn default() -> Self {
        Self {
            count: 10,
            days: 15.0,
            min_jobs: 10,
        }
    }
}

impl SequenceSpec {
    /// The paper's protocol: ten fifteen-day sequences.
    pub fn paper() -> Self {
        Self::default()
    }

    /// Window length in seconds.
    pub fn window_seconds(&self) -> f64 {
        self.days * 86_400.0
    }
}

/// Error from sequence extraction.
#[derive(Debug, Clone, PartialEq)]
pub struct SequenceError {
    /// Sequences actually extracted.
    pub found: usize,
    /// Sequences requested.
    pub requested: usize,
}

impl std::fmt::Display for SequenceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "trace only yields {} usable sequences of the {} requested",
            self.found, self.requested
        )
    }
}

impl std::error::Error for SequenceError {}

/// Slice `trace` into up to `spec.count` disjoint windows of
/// `spec.days` days, starting at the trace's first submission. Windows with
/// fewer than `spec.min_jobs` jobs are skipped (the next window starts at
/// the following window boundary, preserving disjointness). Each returned
/// sequence is rebased to start at time 0 with ids renumbered from 0.
pub fn extract_sequences(trace: &Trace, spec: &SequenceSpec) -> Result<Vec<Trace>, SequenceError> {
    let mut out = Vec::with_capacity(spec.count);
    let Some(origin) = trace.start_time() else {
        return Err(SequenceError {
            found: 0,
            requested: spec.count,
        });
    };
    let window = spec.window_seconds();
    let end = trace.end_time().unwrap_or(origin);
    let mut k = 0usize;
    while out.len() < spec.count {
        let from = origin + k as f64 * window;
        if from > end {
            break;
        }
        let slice = trace.window(from, from + window);
        if slice.len() >= spec.min_jobs {
            out.push(slice.rebased(0.0));
        }
        k += 1;
    }
    if out.len() < spec.count {
        return Err(SequenceError {
            found: out.len(),
            requested: spec.count,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynsched_cluster::Job;

    fn uniform_trace(jobs_per_day: usize, days: usize) -> Trace {
        let gap = 86_400.0 / jobs_per_day as f64;
        let jobs = (0..jobs_per_day * days)
            .map(|i| Job::new(i as u32, i as f64 * gap, 100.0, 100.0, 1))
            .collect();
        Trace::from_jobs(jobs)
    }

    #[test]
    fn extracts_requested_count() {
        let t = uniform_trace(100, 200);
        let spec = SequenceSpec {
            count: 10,
            days: 15.0,
            min_jobs: 10,
        };
        let seqs = extract_sequences(&t, &spec).unwrap();
        assert_eq!(seqs.len(), 10);
        for s in &seqs {
            assert_eq!(s.len(), 1_500);
            assert_eq!(s.start_time(), Some(0.0));
            assert!(s.end_time().unwrap() < spec.window_seconds());
        }
    }

    #[test]
    fn sequences_are_disjoint() {
        // Verify by total job count: 10 windows × 15 days × 100 jobs/day
        // uses exactly the first 150 days; no job counted twice.
        let t = uniform_trace(100, 150);
        let spec = SequenceSpec {
            count: 10,
            days: 15.0,
            min_jobs: 10,
        };
        let seqs = extract_sequences(&t, &spec).unwrap();
        let total: usize = seqs.iter().map(Trace::len).sum();
        assert_eq!(total, t.len());
    }

    #[test]
    fn insufficient_trace_errors() {
        let t = uniform_trace(100, 30);
        let spec = SequenceSpec::paper();
        let err = extract_sequences(&t, &spec).unwrap_err();
        assert_eq!(err.requested, 10);
        assert_eq!(err.found, 2);
    }

    #[test]
    fn sparse_windows_are_skipped() {
        // 2 dense days, 15 empty days, 2 dense days → with 1-day windows and
        // min_jobs=50, only dense windows survive.
        let mut jobs = Vec::new();
        let mut id = 0u32;
        for day in [0usize, 1, 17, 18] {
            for i in 0..100 {
                jobs.push(Job::new(
                    id,
                    day as f64 * 86_400.0 + i as f64 * 10.0,
                    50.0,
                    50.0,
                    1,
                ));
                id += 1;
            }
        }
        let t = Trace::from_jobs(jobs);
        let spec = SequenceSpec {
            count: 4,
            days: 1.0,
            min_jobs: 50,
        };
        let seqs = extract_sequences(&t, &spec).unwrap();
        assert_eq!(seqs.len(), 4);
        for s in &seqs {
            assert_eq!(s.len(), 100);
        }
    }

    #[test]
    fn empty_trace_errors() {
        let err = extract_sequences(&Trace::default(), &SequenceSpec::paper()).unwrap_err();
        assert_eq!(err.found, 0);
    }
}
