//! The columnar trace store: SoA job columns behind cheap shared handles,
//! interned by generation key.
//!
//! The paper's whole method is "simulate many synthetic workloads", and
//! every layer above the workload crate is batched: the trial engine, the
//! evaluation session, and the learning pipeline all fan cells out over
//! reusable per-worker workspaces. The trace layer is where the remaining
//! redundancy lived — every cell of a session grid cloned or rebuilt an
//! AoS `Vec<Job>`, and a Table-4 run constructed the *same* model trace
//! once per evaluation condition. This module removes both:
//!
//! * [`TraceColumns`] stores a submit-sorted trace as structure-of-arrays
//!   columns (`submit`/`runtime`/`estimate`/`cores`/`id` as dense slices),
//!   so hot loops that read one field per job touch 8-byte lanes instead
//!   of striding through 32-byte `Job` structs;
//! * [`TraceView`] is an `Arc`-shared handle over one [`TraceColumns`]:
//!   cloning a view (to hand a sequence to hundreds of grid cells) is a
//!   reference-count bump, never a job copy;
//! * [`TraceStore`] interns views by [`TraceKey`] — a
//!   `(generator, params, seed)` triple with parameters captured as exact
//!   bit patterns — so every evaluation entry point that names the same
//!   workload tuple shares **one** build.
//!
//! # The interning contract
//!
//! A [`TraceKey`] must encode *every* input that influences the generated
//! jobs: the generator family name, the seed, and each numeric parameter
//! (pushed via [`TraceKey::with_f64`] / [`TraceKey::with_u64`], which
//! store exact bit patterns — two keys are equal iff every parameter is
//! bit-identical, so distinct parameters can never collide into one cache
//! entry). Under that contract, interning is observably pure: a store-hit
//! returns columns bit-identical to what rebuilding would produce, which
//! is why `table4_results` and `pipeline::run_full` stay bit-identical to
//! their pre-store behaviour while doing a third of the construction work.
//! Build closures run under the store lock (builds are setup-phase work);
//! a build must not re-enter the same store.

use crate::trace::{Trace, TraceSource};
use dynsched_cluster::Job;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A submit-sorted trace in structure-of-arrays layout: one dense column
/// per job field. This is the storage format every simulation reads — the
/// engine's arrival cursor walks [`TraceColumns::submits`] and its
/// enqueue/complete paths assemble a [`Job`] from one lane of each column.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceColumns {
    ids: Vec<u32>,
    submit: Vec<f64>,
    runtime: Vec<f64>,
    estimate: Vec<f64>,
    cores: Vec<u32>,
}

impl TraceColumns {
    /// Split an AoS trace into columns. The trace is already
    /// `(submit, id)`-sorted ([`Trace::from_jobs`] guarantees it), so the
    /// columns inherit the canonical order and a simulation over the
    /// columns is bit-identical to one over the job slice.
    pub fn from_trace(trace: &Trace) -> Self {
        let jobs = trace.jobs();
        Self {
            ids: jobs.iter().map(|j| j.id).collect(),
            submit: jobs.iter().map(|j| j.submit).collect(),
            runtime: jobs.iter().map(|j| j.runtime).collect(),
            estimate: jobs.iter().map(|j| j.estimate).collect(),
            cores: jobs.iter().map(|j| j.cores).collect(),
        }
    }

    /// Number of jobs.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The dense submit-time column, in canonical trace order.
    pub fn submits(&self) -> &[f64] {
        &self.submit
    }

    /// The dense actual-runtime column.
    pub fn runtimes(&self) -> &[f64] {
        &self.runtime
    }

    /// The dense user-estimate column.
    pub fn estimates(&self) -> &[f64] {
        &self.estimate
    }

    /// The dense requested-cores column.
    pub fn core_counts(&self) -> &[u32] {
        &self.cores
    }

    /// The dense job-id column.
    pub fn ids(&self) -> &[u32] {
        &self.ids
    }

    /// Reassemble the job at trace position `i`.
    pub fn job(&self, i: usize) -> Job {
        Job {
            id: self.ids[i],
            submit: self.submit[i],
            runtime: self.runtime[i],
            estimate: self.estimate[i],
            cores: self.cores[i],
        }
    }

    /// Iterate the jobs in trace order (reassembled per lane).
    pub fn iter_jobs(&self) -> impl Iterator<Item = Job> + '_ {
        (0..self.len()).map(|i| self.job(i))
    }

    /// Submit time of the first job (`None` if empty).
    pub fn start_time(&self) -> Option<f64> {
        self.submit.first().copied()
    }

    /// Submit time of the last job (`None` if empty).
    pub fn end_time(&self) -> Option<f64> {
        self.submit.last().copied()
    }

    /// Materialize an owned AoS [`Trace`] (the inverse of
    /// [`TraceColumns::from_trace`]; used by transformations that rewrite
    /// jobs wholesale, like load rescaling).
    pub fn to_trace(&self) -> Trace {
        Trace::from_jobs(self.iter_jobs().collect())
    }

    /// Summary statistics relative to a platform size (see
    /// [`Trace::summary`]). Setup-phase convenience, not a hot path.
    pub fn summary(&self, platform_cores: u32) -> Option<crate::trace::TraceSummary> {
        self.to_trace().summary(platform_cores)
    }
}

impl TraceSource for TraceColumns {
    fn len(&self) -> usize {
        self.ids.len()
    }

    fn id(&self, i: usize) -> u32 {
        self.ids[i]
    }

    fn submit(&self, i: usize) -> f64 {
        self.submit[i]
    }

    fn runtime(&self, i: usize) -> f64 {
        self.runtime[i]
    }

    fn estimate(&self, i: usize) -> f64 {
        self.estimate[i]
    }

    fn cores(&self, i: usize) -> u32 {
        self.cores[i]
    }

    fn job(&self, i: usize) -> Job {
        TraceColumns::job(self, i)
    }
}

/// A cheap shared handle over one [`TraceColumns`]. Cloning bumps a
/// reference count; the columns themselves are immutable once built, so a
/// view can be handed to any number of grid cells (or worker threads)
/// without copying a single job.
#[derive(Debug, Clone)]
pub struct TraceView {
    columns: Arc<TraceColumns>,
}

impl TraceView {
    /// Wrap freshly built columns in a shareable view.
    pub fn new(columns: TraceColumns) -> Self {
        Self {
            columns: Arc::new(columns),
        }
    }

    /// Columnarize an AoS trace into a fresh (uninterned) view.
    pub fn from_trace(trace: &Trace) -> Self {
        Self::new(TraceColumns::from_trace(trace))
    }

    /// The underlying columns.
    pub fn columns(&self) -> &TraceColumns {
        &self.columns
    }

    /// Whether two views share the same underlying storage (the test for
    /// "did the store actually intern this?").
    pub fn shares_storage(&self, other: &TraceView) -> bool {
        Arc::ptr_eq(&self.columns, &other.columns)
    }
}

impl std::ops::Deref for TraceView {
    type Target = TraceColumns;

    fn deref(&self) -> &TraceColumns {
        &self.columns
    }
}

/// Views compare by *content* (same jobs in the same order), not by
/// storage identity: two independently built views of the same workload
/// are equal.
impl PartialEq for TraceView {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.columns, &other.columns) || *self.columns == *other.columns
    }
}

impl TraceSource for TraceView {
    fn len(&self) -> usize {
        self.columns.len()
    }

    fn id(&self, i: usize) -> u32 {
        TraceSource::id(&*self.columns, i)
    }

    fn submit(&self, i: usize) -> f64 {
        TraceSource::submit(&*self.columns, i)
    }

    fn runtime(&self, i: usize) -> f64 {
        TraceSource::runtime(&*self.columns, i)
    }

    fn estimate(&self, i: usize) -> f64 {
        TraceSource::estimate(&*self.columns, i)
    }

    fn cores(&self, i: usize) -> u32 {
        TraceSource::cores(&*self.columns, i)
    }

    fn job(&self, i: usize) -> Job {
        self.columns.job(i)
    }
}

/// Identity of one generated workload: `(generator family, seed, params)`.
///
/// Parameters are stored as exact bit patterns ([`f64::to_bits`] for
/// floats), so key equality is bit equality of every input — the property
/// the intern-key soundness tests pin: distinct parameters can never share
/// a cache entry, and NaN payloads or `-0.0` vs `0.0` differences count as
/// distinct rather than colliding.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TraceKey {
    family: String,
    seed: u64,
    params: Vec<u64>,
}

impl TraceKey {
    /// A key for `family` under `seed`, with no parameters yet.
    pub fn new(family: impl Into<String>, seed: u64) -> Self {
        Self {
            family: family.into(),
            seed,
            params: Vec::new(),
        }
    }

    /// Append a float parameter (captured as its exact bit pattern).
    pub fn with_f64(mut self, x: f64) -> Self {
        self.params.push(x.to_bits());
        self
    }

    /// Append an integer parameter.
    pub fn with_u64(mut self, x: u64) -> Self {
        self.params.push(x);
        self
    }

    /// The generator family name.
    pub fn family(&self) -> &str {
        &self.family
    }

    /// The generation seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

/// An interning cache of built traces: one entry per distinct
/// [`TraceKey`], each entry a set of columnarized sequences shared via
/// [`TraceView`] handles.
///
/// Sessions, the Table-4 grid, and the full-run pipeline all pass one
/// store through their scenario constructors, so the same
/// `(generator, params, seed)` tuple is built exactly once no matter how
/// many rows, conditions, or entry points name it. The hit/build counters
/// make the sharing observable (and testable) without instrumenting
/// callers.
#[derive(Debug, Default)]
pub struct TraceStore {
    entries: Mutex<HashMap<TraceKey, Arc<[TraceView]>>>,
    builds: AtomicU64,
    hits: AtomicU64,
}

impl TraceStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Look up `key`; on a miss, run `build` and intern its columnarized
    /// result. Returns cheap handles either way.
    ///
    /// `build` executes under the store lock — it must not re-enter this
    /// store (builds are generator calls, not evaluations, so they have no
    /// reason to).
    pub fn get_or_build_set(
        &self,
        key: TraceKey,
        build: impl FnOnce() -> Vec<Trace>,
    ) -> Arc<[TraceView]> {
        let mut entries = self.entries.lock().expect("trace store poisoned");
        if let Some(views) = entries.get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(views);
        }
        self.builds.fetch_add(1, Ordering::Relaxed);
        let views: Arc<[TraceView]> = build().iter().map(TraceView::from_trace).collect();
        entries.insert(key, Arc::clone(&views));
        views
    }

    /// Read-only probe: look up `key` without building; `None` on a miss.
    /// A hit counts in [`TraceStore::hits`].
    pub fn get_set(&self, key: &TraceKey) -> Option<Arc<[TraceView]>> {
        let entries = self.entries.lock().expect("trace store poisoned");
        let found = entries.get(key).map(Arc::clone);
        if found.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        found
    }

    /// Fallible-builder variant of [`TraceStore::get_or_build_set`]: a
    /// builder error propagates and nothing is interned, so a broken
    /// entry can never enter the cache. Same locking contract — `build`
    /// runs under the store lock and must not re-enter this store.
    pub fn get_or_try_build_set<E>(
        &self,
        key: TraceKey,
        build: impl FnOnce() -> Result<Vec<Trace>, E>,
    ) -> Result<Arc<[TraceView]>, E> {
        let mut entries = self.entries.lock().expect("trace store poisoned");
        if let Some(views) = entries.get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(views));
        }
        let views: Arc<[TraceView]> = build()?.iter().map(TraceView::from_trace).collect();
        self.builds.fetch_add(1, Ordering::Relaxed);
        entries.insert(key, Arc::clone(&views));
        Ok(views)
    }

    /// Single-trace convenience over [`TraceStore::get_or_build_set`].
    ///
    /// # Panics
    /// Panics if a set entry under the same key does not hold exactly one
    /// trace (a key must always be built the same way).
    pub fn get_or_build(&self, key: TraceKey, build: impl FnOnce() -> Trace) -> TraceView {
        let set = self.get_or_build_set(key, || vec![build()]);
        assert_eq!(
            set.len(),
            1,
            "key interned a {}-trace set, not a single trace",
            set.len()
        );
        set[0].clone()
    }

    /// Number of distinct keys interned so far.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("trace store poisoned").len()
    }

    /// Whether nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// How many times a `get_or_build*` call actually ran its builder.
    pub fn builds(&self) -> u64 {
        self.builds.load(Ordering::Relaxed)
    }

    /// How many times a `get_or_build*` call was served from the cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(id: u32, submit: f64, runtime: f64, cores: u32) -> Job {
        Job::new(id, submit, runtime, runtime * 2.0, cores)
    }

    fn trace(seed: u32) -> Trace {
        Trace::from_jobs(
            (0..20)
                .map(|i| {
                    job(
                        i,
                        (i + seed) as f64 * 3.0,
                        5.0 + (i % 4) as f64,
                        1 + (i + seed) % 5,
                    )
                })
                .collect(),
        )
    }

    #[test]
    fn columns_roundtrip_is_lossless() {
        let t = trace(3);
        let cols = TraceColumns::from_trace(&t);
        assert_eq!(cols.len(), t.len());
        for (i, j) in t.jobs().iter().enumerate() {
            assert_eq!(&cols.job(i), j);
        }
        assert_eq!(cols.to_trace(), t);
    }

    #[test]
    fn column_slices_match_job_fields() {
        let t = trace(1);
        let cols = TraceColumns::from_trace(&t);
        for (i, j) in t.jobs().iter().enumerate() {
            assert_eq!(cols.submits()[i], j.submit);
            assert_eq!(cols.runtimes()[i], j.runtime);
            assert_eq!(cols.estimates()[i], j.estimate);
            assert_eq!(cols.core_counts()[i], j.cores);
            assert_eq!(cols.ids()[i], j.id);
        }
    }

    #[test]
    fn view_clone_shares_storage() {
        let v = TraceView::from_trace(&trace(0));
        let w = v.clone();
        assert!(v.shares_storage(&w));
        assert_eq!(v, w);
        // An independent build of the same jobs is equal but not shared.
        let u = TraceView::from_trace(&trace(0));
        assert!(!v.shares_storage(&u));
        assert_eq!(v, u);
    }

    #[test]
    fn store_builds_each_key_once() {
        let store = TraceStore::new();
        let key = || TraceKey::new("lublin", 7).with_u64(64).with_f64(0.9);
        let a = store.get_or_build(key(), || trace(0));
        let b = store.get_or_build(key(), || panic!("must be served from cache"));
        assert!(a.shares_storage(&b));
        assert_eq!(store.builds(), 1);
        assert_eq!(store.hits(), 1);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn distinct_params_never_share_an_entry() {
        let store = TraceStore::new();
        let a = store.get_or_build(TraceKey::new("m", 1).with_f64(0.9), || trace(0));
        let b = store.get_or_build(TraceKey::new("m", 1).with_f64(0.90001), || trace(1));
        let c = store.get_or_build(TraceKey::new("m", 2).with_f64(0.9), || trace(2));
        let d = store.get_or_build(TraceKey::new("n", 1).with_f64(0.9), || trace(3));
        assert!(!a.shares_storage(&b));
        assert!(!a.shares_storage(&c));
        assert!(!a.shares_storage(&d));
        assert_eq!(store.builds(), 4);
        assert_eq!(store.hits(), 0);
    }

    #[test]
    fn zero_and_negative_zero_are_distinct_params() {
        let store = TraceStore::new();
        let a = store.get_or_build(TraceKey::new("m", 1).with_f64(0.0), || trace(0));
        let b = store.get_or_build(TraceKey::new("m", 1).with_f64(-0.0), || trace(1));
        assert!(!a.shares_storage(&b));
        assert_eq!(store.builds(), 2);
    }

    #[test]
    fn failed_builders_intern_nothing() {
        let store = TraceStore::new();
        let key = || TraceKey::new("fallible", 1);
        let err: Result<_, &str> = store.get_or_try_build_set(key(), || Err("sparse trace"));
        assert_eq!(err.unwrap_err(), "sparse trace");
        assert_eq!(store.builds(), 0, "a failed build must not count or intern");
        assert_eq!(store.len(), 0);
        // The same key still builds successfully afterwards, and then hits.
        let ok: Result<_, &str> = store.get_or_try_build_set(key(), || Ok(vec![trace(0)]));
        assert_eq!(ok.unwrap().len(), 1);
        let hit: Result<_, &str> = store.get_or_try_build_set(key(), || unreachable!("cached"));
        assert!(hit.is_ok());
        assert_eq!((store.builds(), store.hits()), (1, 1));
    }

    #[test]
    fn set_interning_shares_every_sequence() {
        let store = TraceStore::new();
        let key = || TraceKey::new("seqs", 5).with_u64(3);
        let a = store.get_or_build_set(key(), || vec![trace(0), trace(1), trace(2)]);
        let b = store.get_or_build_set(key(), || unreachable!("cached"));
        assert_eq!(a.len(), 3);
        for (x, y) in a.iter().zip(b.iter()) {
            assert!(x.shares_storage(y));
        }
    }

    #[test]
    fn source_accessors_agree_with_jobs() {
        use crate::trace::TraceSource as _;
        let t = trace(2);
        let v = TraceView::from_trace(&t);
        assert_eq!(TraceSource::len(&v), t.len());
        for i in 0..t.len() {
            assert_eq!(v.job(i), t.jobs()[i]);
            assert_eq!(TraceSource::submit(&v, i), t.jobs()[i].submit);
        }
    }
}
