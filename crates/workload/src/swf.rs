//! Standard Workload Format (SWF) reading and writing.
//!
//! The Parallel Workloads Archive distributes every trace the paper
//! evaluates on (Curie, ANL Intrepid, SDSC Blue, CTC SP2) in SWF: one job
//! per line, 18 whitespace-separated fields, `;`-prefixed header comments.
//! We implement the full record format so real archive logs can be dropped
//! into the experiment harness unchanged, and so our synthetic stand-ins
//! can be exported for inspection with standard SWF tooling.
//!
//! Field reference (Feitelson, Tsafrir & Krakov 2014):
//! ```text
//!  1 job number          7 used memory        13 group id
//!  2 submit time         8 requested procs    14 executable id
//!  3 wait time           9 requested time     15 queue number
//!  4 run time           10 requested memory   16 partition number
//!  5 allocated procs    11 status             17 preceding job
//!  6 avg cpu time       12 user id            18 think time
//! ```

use crate::trace::Trace;
use dynsched_cluster::Job;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;
use std::io::BufRead;
use std::path::Path;

/// One raw SWF record, all 18 fields. `-1` encodes "unknown" as per the
/// format specification.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SwfRecord {
    /// Field 1: job number.
    pub job_number: i64,
    /// Field 2: submit time (seconds from trace start).
    pub submit: f64,
    /// Field 3: wait time in the original system (seconds).
    pub wait: f64,
    /// Field 4: actual run time (seconds).
    pub run_time: f64,
    /// Field 5: number of allocated processors.
    pub allocated_procs: i64,
    /// Field 6: average CPU time used per processor.
    pub avg_cpu_time: f64,
    /// Field 7: used memory (KB per processor).
    pub used_memory: f64,
    /// Field 8: requested number of processors.
    pub requested_procs: i64,
    /// Field 9: requested (user-estimated) run time.
    pub requested_time: f64,
    /// Field 10: requested memory.
    pub requested_memory: f64,
    /// Field 11: completion status (1 = completed).
    pub status: i64,
    /// Field 12: user id.
    pub user_id: i64,
    /// Field 13: group id.
    pub group_id: i64,
    /// Field 14: executable (application) number.
    pub executable: i64,
    /// Field 15: queue number.
    pub queue: i64,
    /// Field 16: partition number.
    pub partition: i64,
    /// Field 17: preceding job number.
    pub preceding_job: i64,
    /// Field 18: think time after preceding job.
    pub think_time: f64,
}

impl SwfRecord {
    /// A record with every optional field set to the SWF "unknown" value.
    pub fn unknown() -> Self {
        Self {
            job_number: -1,
            submit: 0.0,
            wait: -1.0,
            run_time: -1.0,
            allocated_procs: -1,
            avg_cpu_time: -1.0,
            used_memory: -1.0,
            requested_procs: -1,
            requested_time: -1.0,
            requested_memory: -1.0,
            status: -1,
            user_id: -1,
            group_id: -1,
            executable: -1,
            queue: -1,
            partition: -1,
            preceding_job: -1,
            think_time: -1.0,
        }
    }

    /// Build a record from the simulation-level [`Job`] representation.
    pub fn from_job(job: &Job) -> Self {
        Self {
            job_number: job.id as i64,
            submit: job.submit,
            run_time: job.runtime,
            allocated_procs: job.cores as i64,
            requested_procs: job.cores as i64,
            requested_time: job.estimate,
            status: 1,
            ..Self::unknown()
        }
    }

    /// Convert to a simulator [`Job`], applying the archive community's
    /// conventions: cores = allocated processors, falling back to requested;
    /// estimate = requested time, falling back to the actual run time.
    ///
    /// Returns `None` for records unusable in a rigid-job simulation
    /// (missing run time or processor count, or zero processors).
    pub fn to_job(&self, id: u32) -> Option<Job> {
        let cores = if self.allocated_procs > 0 {
            self.allocated_procs
        } else {
            self.requested_procs
        };
        if cores <= 0 {
            return None;
        }
        // NaN run times / submits are unusable too, hence the negated form.
        if self.run_time.is_nan()
            || self.run_time < 0.0
            || self.submit.is_nan()
            || self.submit < 0.0
        {
            return None;
        }
        let runtime = self.run_time.max(1.0);
        let estimate = if self.requested_time > 0.0 {
            self.requested_time
        } else {
            runtime
        };
        Some(Job::new(id, self.submit, runtime, estimate, cores as u32))
    }
}

/// Error produced while parsing an SWF document.
#[derive(Debug, Clone, PartialEq)]
pub struct SwfParseError {
    /// 1-based line number in the input.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for SwfParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SWF parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for SwfParseError {}

/// Error produced while reading an SWF document from a stream: either the
/// underlying I/O failed or a line failed to parse.
#[derive(Debug)]
pub enum SwfReadError {
    /// The reader failed.
    Io(std::io::Error),
    /// A line failed the format rules (with its 1-based position).
    Parse(SwfParseError),
}

impl std::fmt::Display for SwfReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SwfReadError::Io(e) => write!(f, "SWF read error: {e}"),
            SwfReadError::Parse(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for SwfReadError {}

impl From<SwfParseError> for SwfReadError {
    fn from(e: SwfParseError) -> Self {
        SwfReadError::Parse(e)
    }
}

/// Parse one 18-field data line (already trimmed, non-empty, not a
/// comment).
fn parse_record_line(line_num: usize, trimmed: &str) -> Result<SwfRecord, SwfParseError> {
    let fields: Vec<&str> = trimmed.split_whitespace().collect();
    if fields.len() < 18 {
        return Err(SwfParseError {
            line: line_num,
            message: format!("expected 18 fields, found {}", fields.len()),
        });
    }
    let f = |i: usize| -> Result<f64, SwfParseError> {
        fields[i].parse::<f64>().map_err(|e| SwfParseError {
            line: line_num,
            message: format!("field {} ({:?}): {e}", i + 1, fields[i]),
        })
    };
    let g = |i: usize| -> Result<i64, SwfParseError> {
        // Integer fields occasionally appear as floats in archive logs.
        fields[i]
            .parse::<i64>()
            .or_else(|_| fields[i].parse::<f64>().map(|x| x as i64))
            .map_err(|e| SwfParseError {
                line: line_num,
                message: format!("field {} ({:?}): {e}", i + 1, fields[i]),
            })
    };
    Ok(SwfRecord {
        job_number: g(0)?,
        submit: f(1)?,
        wait: f(2)?,
        run_time: f(3)?,
        allocated_procs: g(4)?,
        avg_cpu_time: f(5)?,
        used_memory: f(6)?,
        requested_procs: g(7)?,
        requested_time: f(8)?,
        requested_memory: f(9)?,
        status: g(10)?,
        user_id: g(11)?,
        group_id: g(12)?,
        executable: g(13)?,
        queue: g(14)?,
        partition: g(15)?,
        preceding_job: g(16)?,
        think_time: f(17)?,
    })
}

/// The streaming scanner every SWF entry point is built on: reads
/// line-by-line through one reusable buffer (never the whole document),
/// classifies each line, and hands comments/records to the callbacks. All
/// of the format's dirty-input rules live in one place — line numbers
/// count comments and blanks, short/garbage lines error with their
/// position, comments may appear anywhere.
fn scan_swf<R: BufRead>(
    mut reader: R,
    mut on_comment: impl FnMut(&str),
    mut on_record: impl FnMut(SwfRecord),
) -> Result<(), SwfReadError> {
    let mut line = String::new();
    let mut line_num = 0usize;
    loop {
        line.clear();
        if reader.read_line(&mut line).map_err(SwfReadError::Io)? == 0 {
            return Ok(());
        }
        line_num += 1;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        if let Some(comment) = trimmed.strip_prefix(';') {
            on_comment(comment.trim());
            continue;
        }
        on_record(parse_record_line(line_num, trimmed)?);
    }
}

/// Unwrap a streaming error from an in-memory source, where I/O cannot
/// fail.
fn expect_parse_error(e: SwfReadError) -> SwfParseError {
    match e {
        SwfReadError::Parse(p) => p,
        SwfReadError::Io(io) => unreachable!("in-memory read failed: {io}"),
    }
}

/// Parse an SWF document into raw records, preserving header comments.
///
/// Header comment lines start with `;`. Blank lines are skipped. Each data
/// line must have at least 18 whitespace-separated numeric fields (extra
/// fields, present in some archive conversions, are ignored).
pub fn parse_swf(input: &str) -> Result<(Vec<String>, Vec<SwfRecord>), SwfParseError> {
    parse_swf_reader(input.as_bytes()).map_err(expect_parse_error)
}

/// Streaming equivalent of [`parse_swf`]: reads from any [`BufRead`]
/// line-by-line, so a multi-gigabyte archive log never has to fit in
/// memory as one string.
pub fn parse_swf_reader<R: BufRead>(
    reader: R,
) -> Result<(Vec<String>, Vec<SwfRecord>), SwfReadError> {
    let mut comments = Vec::new();
    let mut records = Vec::new();
    scan_swf(
        reader,
        |c| comments.push(c.to_string()),
        |r| records.push(r),
    )?;
    Ok((comments, records))
}

/// Metadata from an SWF file's `;`-comment header. The archive's headers
/// are `; Key: value` lines; unknown keys are preserved in `extra`.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SwfHeader {
    /// `Computer:` — machine description.
    pub computer: Option<String>,
    /// `Installation:` — site.
    pub installation: Option<String>,
    /// `MaxProcs:` — processor count (the experiment platform width).
    pub max_procs: Option<u32>,
    /// `MaxJobs:` — number of jobs the header claims.
    pub max_jobs: Option<u64>,
    /// `MaxRuntime:` — site walltime limit, seconds.
    pub max_runtime: Option<f64>,
    /// `UnixStartTime:` — epoch seconds of trace start.
    pub unix_start_time: Option<i64>,
    /// `TimeZoneString:` — e.g. `Europe/Paris`.
    pub timezone: Option<String>,
    /// All header lines that are not `Key: value` or use unknown keys.
    pub extra: Vec<String>,
}

impl SwfHeader {
    /// Extract header metadata from the comment lines returned by
    /// [`parse_swf`].
    pub fn from_comments(comments: &[String]) -> Self {
        let mut header = SwfHeader::default();
        for line in comments {
            let Some((key, value)) = line.split_once(':') else {
                header.extra.push(line.clone());
                continue;
            };
            let value = value.trim();
            match key.trim() {
                "Computer" => header.computer = Some(value.to_string()),
                "Installation" => header.installation = Some(value.to_string()),
                "MaxProcs" => header.max_procs = value.parse().ok(),
                "MaxJobs" => header.max_jobs = value.parse().ok(),
                "MaxRuntime" => header.max_runtime = value.parse().ok(),
                "UnixStartTime" => header.unix_start_time = value.parse().ok(),
                "TimeZoneString" => header.timezone = Some(value.to_string()),
                _ => header.extra.push(line.clone()),
            }
        }
        header
    }
}

/// Parse an SWF document into its header metadata and a [`Trace`] in one
/// step — the convenient entry point for archive logs (`MaxProcs` gives
/// the platform width to simulate).
pub fn parse_swf_with_header(input: &str) -> Result<(SwfHeader, Trace), SwfParseError> {
    parse_swf_with_header_reader(input.as_bytes()).map_err(expect_parse_error)
}

/// Streaming equivalent of [`parse_swf_with_header`]: each line is
/// converted to a [`Job`] (or dropped by the documented dirty-input rules)
/// as it is read — raw [`SwfRecord`]s are never accumulated, so peak
/// memory is the usable jobs plus one line buffer.
pub fn parse_swf_with_header_reader<R: BufRead>(
    reader: R,
) -> Result<(SwfHeader, Trace), SwfReadError> {
    let mut comments = Vec::new();
    let mut jobs = Vec::new();
    scan_swf(
        reader,
        |c| comments.push(c.to_string()),
        |rec| {
            if let Some(job) = rec.to_job(jobs.len() as u32) {
                jobs.push(job);
            }
        },
    )?;
    Ok((SwfHeader::from_comments(&comments), Trace::from_jobs(jobs)))
}

/// Parse an SWF document straight into a [`Trace`], dropping unusable
/// records (the archive convention: failed/cancelled jobs without a run
/// time do not participate in scheduling studies).
pub fn parse_swf_trace(input: &str) -> Result<Trace, SwfParseError> {
    parse_swf_trace_reader(input.as_bytes()).map_err(expect_parse_error)
}

/// Streaming equivalent of [`parse_swf_trace`] (see
/// [`parse_swf_with_header_reader`] for the memory contract).
pub fn parse_swf_trace_reader<R: BufRead>(reader: R) -> Result<Trace, SwfReadError> {
    let mut jobs = Vec::new();
    scan_swf(
        reader,
        |_| {},
        |rec| {
            if let Some(job) = rec.to_job(jobs.len() as u32) {
                jobs.push(job);
            }
        },
    )?;
    Ok(Trace::from_jobs(jobs))
}

/// Read an SWF file from disk through a buffered line-by-line stream —
/// the entry point the CLI uses, sized for archive logs that do not fit
/// comfortably in one allocation.
pub fn read_swf_file(path: impl AsRef<Path>) -> Result<(SwfHeader, Trace), SwfReadError> {
    let file = std::fs::File::open(path).map_err(SwfReadError::Io)?;
    parse_swf_with_header_reader(std::io::BufReader::new(file))
}

fn fmt_time(x: f64) -> String {
    if x < 0.0 {
        "-1".to_string()
    } else if (x - x.round()).abs() < 1e-9 {
        format!("{}", x.round() as i64)
    } else {
        format!("{x:.2}")
    }
}

/// Serialize records to SWF text, with optional header comment lines
/// (written `; `-prefixed, one per entry).
pub fn write_swf(comments: &[String], records: &[SwfRecord]) -> String {
    let mut out = String::new();
    for c in comments {
        let _ = writeln!(out, "; {c}");
    }
    for r in records {
        let _ = writeln!(
            out,
            "{} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {}",
            r.job_number,
            fmt_time(r.submit),
            fmt_time(r.wait),
            fmt_time(r.run_time),
            r.allocated_procs,
            fmt_time(r.avg_cpu_time),
            fmt_time(r.used_memory),
            r.requested_procs,
            fmt_time(r.requested_time),
            fmt_time(r.requested_memory),
            r.status,
            r.user_id,
            r.group_id,
            r.executable,
            r.queue,
            r.partition,
            r.preceding_job,
            fmt_time(r.think_time),
        );
    }
    out
}

/// Serialize a [`Trace`] as SWF with a standard header.
pub fn write_swf_trace(trace: &Trace, platform_cores: u32) -> String {
    let comments = vec![
        "Generated by dynsched (SC'17 reproduction)".to_string(),
        format!("MaxProcs: {platform_cores}"),
        format!("MaxJobs: {}", trace.jobs().len()),
        "UnixStartTime: 0".to_string(),
    ];
    let records: Vec<SwfRecord> = trace.jobs().iter().map(SwfRecord::from_job).collect();
    write_swf(&comments, &records)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
; Computer: Test cluster
; MaxProcs: 128
1 0 5 100 4 -1 -1 4 200 -1 1 3 1 -1 1 1 -1 -1
2 10 0 50 1 -1 -1 1 -1 -1 1 3 1 -1 1 1 -1 -1

3 20 2 30 -1 -1 -1 8 60 -1 0 4 1 -1 1 1 -1 -1
";

    #[test]
    fn parses_comments_and_records() {
        let (comments, records) = parse_swf(SAMPLE).unwrap();
        assert_eq!(comments.len(), 2);
        assert!(comments[0].contains("Test cluster"));
        assert_eq!(records.len(), 3);
        assert_eq!(records[0].job_number, 1);
        assert_eq!(records[0].run_time, 100.0);
        assert_eq!(records[0].requested_time, 200.0);
        assert_eq!(records[2].allocated_procs, -1);
    }

    #[test]
    fn to_job_semantics() {
        let (_, records) = parse_swf(SAMPLE).unwrap();
        // Record 1: allocated procs and requested time present.
        let j = records[0].to_job(0).unwrap();
        assert_eq!(j.cores, 4);
        assert_eq!(j.estimate, 200.0);
        // Record 2: no requested time -> estimate falls back to runtime.
        let j = records[1].to_job(1).unwrap();
        assert_eq!(j.estimate, 50.0);
        // Record 3: allocated -1 -> falls back to requested procs (8).
        let j = records[2].to_job(2).unwrap();
        assert_eq!(j.cores, 8);
    }

    #[test]
    fn rejects_short_lines() {
        let err = parse_swf("1 2 3\n").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.message.contains("18 fields"));
    }

    #[test]
    fn rejects_garbage_fields() {
        let bad = "1 0 5 abc 4 -1 -1 4 200 -1 1 3 1 -1 1 1 -1 -1\n";
        let err = parse_swf(bad).unwrap_err();
        assert!(err.message.contains("field 4"));
    }

    #[test]
    fn roundtrip_preserves_records() {
        let (comments, records) = parse_swf(SAMPLE).unwrap();
        let text = write_swf(&comments, &records);
        let (comments2, records2) = parse_swf(&text).unwrap();
        assert_eq!(comments, comments2);
        assert_eq!(records, records2);
    }

    #[test]
    fn trace_conversion_drops_unusable() {
        let with_bad = "\
1 0 5 100 4 -1 -1 4 200 -1 1 3 1 -1 1 1 -1 -1
2 10 0 -1 1 -1 -1 1 -1 -1 5 3 1 -1 1 1 -1 -1
3 20 2 30 0 -1 -1 0 60 -1 0 4 1 -1 1 1 -1 -1
";
        let trace = parse_swf_trace(with_bad).unwrap();
        // Job 2 has no run time; job 3 has zero procs. Only job 1 survives.
        assert_eq!(trace.jobs().len(), 1);
        assert_eq!(trace.jobs()[0].cores, 4);
    }

    #[test]
    fn zero_runtime_clamped_to_one_second() {
        let line = "1 0 0 0 2 -1 -1 2 10 -1 1 1 1 -1 1 1 -1 -1\n";
        let trace = parse_swf_trace(line).unwrap();
        assert_eq!(trace.jobs()[0].runtime, 1.0);
    }

    #[test]
    fn header_metadata_parses() {
        let src = "\
; Computer: IBM SP2
; Installation: CTC
; MaxProcs: 338
; MaxJobs: 77222
; MaxRuntime: 64800
; UnixStartTime: 867868270
; TimeZoneString: US/Eastern
; Note: converted from accounting logs
1 0 5 100 4 -1 -1 4 200 -1 1 3 1 -1 1 1 -1 -1
";
        let (header, trace) = parse_swf_with_header(src).unwrap();
        assert_eq!(header.computer.as_deref(), Some("IBM SP2"));
        assert_eq!(header.max_procs, Some(338));
        assert_eq!(header.max_jobs, Some(77_222));
        assert_eq!(header.max_runtime, Some(64_800.0));
        assert_eq!(header.unix_start_time, Some(867_868_270));
        assert_eq!(header.timezone.as_deref(), Some("US/Eastern"));
        assert_eq!(header.extra.len(), 1);
        assert_eq!(trace.len(), 1);
    }

    #[test]
    fn header_tolerates_missing_fields() {
        let header = SwfHeader::from_comments(&["just a free-form note".to_string()]);
        assert_eq!(header.max_procs, None);
        assert_eq!(header.extra.len(), 1);
    }

    #[test]
    fn reader_and_str_parsers_agree() {
        // The str entry points are thin wrappers over the streaming
        // scanner; this pins that a BufRead with a tiny buffer (forcing
        // many read_line calls) sees the identical document.
        let reader = std::io::BufReader::with_capacity(8, SAMPLE.as_bytes());
        let (comments, records) = parse_swf_reader(reader).unwrap();
        let (c2, r2) = parse_swf(SAMPLE).unwrap();
        assert_eq!(comments, c2);
        assert_eq!(records, r2);
        let t1 = parse_swf_trace_reader(std::io::BufReader::with_capacity(8, SAMPLE.as_bytes()))
            .unwrap();
        assert_eq!(t1, parse_swf_trace(SAMPLE).unwrap());
    }

    #[test]
    fn reader_errors_carry_line_numbers() {
        let src = format!("{SAMPLE}not a data line\n");
        let err = parse_swf_trace_reader(src.as_bytes()).unwrap_err();
        match err {
            SwfReadError::Parse(p) => {
                assert_eq!(p.line, 7, "line numbers count comments and blanks");
                assert!(p.message.contains("18 fields"));
            }
            SwfReadError::Io(_) => panic!("expected a parse error"),
        }
    }

    #[test]
    fn read_swf_file_streams_from_disk() {
        let dir = std::env::temp_dir().join("dynsched-swf-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.swf");
        std::fs::write(&path, SAMPLE).unwrap();
        let (header, trace) = read_swf_file(&path).unwrap();
        assert_eq!(header.max_procs, Some(128));
        assert_eq!(trace, parse_swf_trace(SAMPLE).unwrap());
        assert!(matches!(
            read_swf_file(dir.join("missing.swf")),
            Err(SwfReadError::Io(_))
        ));
    }

    #[test]
    fn write_swf_trace_includes_header() {
        let trace = Trace::from_jobs(vec![Job::new(0, 0.0, 10.0, 20.0, 2)]);
        let text = write_swf_trace(&trace, 64);
        assert!(text.contains("MaxProcs: 64"));
        let reparsed = parse_swf_trace(&text).unwrap();
        assert_eq!(reparsed.jobs().len(), 1);
        assert_eq!(reparsed.jobs()[0].estimate, 20.0);
    }
}
