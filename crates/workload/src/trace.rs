//! In-memory job traces and summary statistics.
//!
//! A [`Trace`] is a submit-time-ordered sequence of rigid jobs, the common
//! currency between workload generators, SWF files, and the scheduler. The
//! summary statistics ([`TraceSummary`]) drive the arrival-rate calibration
//! of the synthetic archive stand-ins: offered load = mean job area divided
//! by (platform capacity × mean inter-arrival).

use dynsched_cluster::Job;
use serde::{Deserialize, Serialize};

/// Read access to a submit-sorted job sequence, independent of storage
/// layout.
///
/// The scheduler engine is generic over this trait, so it can stride an
/// AoS [`Trace`] (the construction/transformation format) or read the
/// dense SoA columns of a [`TraceView`](crate::store::TraceView) (the
/// simulation format) without a conversion step on either side. Both
/// layouts present the identical canonical `(submit, id)` order with the
/// identical field values, which is why switching a call site between
/// them is bit-invisible to every simulation result.
///
/// Positions `i` are *trace positions* (`0..len`), the same dense index
/// the engine keys its running tables by.
pub trait TraceSource {
    /// Number of jobs.
    fn len(&self) -> usize;

    /// Whether the trace has no jobs.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Id of the job at trace position `i`.
    fn id(&self, i: usize) -> u32;

    /// Submit time of the job at trace position `i`.
    fn submit(&self, i: usize) -> f64;

    /// Actual runtime of the job at trace position `i`.
    fn runtime(&self, i: usize) -> f64;

    /// User estimate of the job at trace position `i`.
    fn estimate(&self, i: usize) -> f64;

    /// Requested cores of the job at trace position `i`.
    fn cores(&self, i: usize) -> u32;

    /// The job at trace position `i`, reassembled by value.
    fn job(&self, i: usize) -> Job {
        Job {
            id: self.id(i),
            submit: self.submit(i),
            runtime: self.runtime(i),
            estimate: self.estimate(i),
            cores: self.cores(i),
        }
    }
}

impl TraceSource for Trace {
    fn len(&self) -> usize {
        self.jobs.len()
    }

    fn id(&self, i: usize) -> u32 {
        self.jobs[i].id
    }

    fn submit(&self, i: usize) -> f64 {
        self.jobs[i].submit
    }

    fn runtime(&self, i: usize) -> f64 {
        self.jobs[i].runtime
    }

    fn estimate(&self, i: usize) -> f64 {
        self.jobs[i].estimate
    }

    fn cores(&self, i: usize) -> u32 {
        self.jobs[i].cores
    }

    fn job(&self, i: usize) -> Job {
        self.jobs[i]
    }
}

/// A submit-time-ordered sequence of jobs.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Trace {
    jobs: Vec<Job>,
}

impl Trace {
    /// Build a trace, sorting jobs by `(submit, id)` to guarantee a
    /// deterministic order for equal submit times.
    pub fn from_jobs(mut jobs: Vec<Job>) -> Self {
        jobs.sort_by(|a, b| a.submit.total_cmp(&b.submit).then(a.id.cmp(&b.id)));
        Self { jobs }
    }

    /// The jobs, in submit order.
    pub fn jobs(&self) -> &[Job] {
        &self.jobs
    }

    /// Number of jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Submit time of the first job (None if empty).
    pub fn start_time(&self) -> Option<f64> {
        self.jobs.first().map(|j| j.submit)
    }

    /// Submit time of the last job (None if empty).
    pub fn end_time(&self) -> Option<f64> {
        self.jobs.last().map(|j| j.submit)
    }

    /// Duration between first and last submit (0 for <2 jobs).
    pub fn span(&self) -> f64 {
        match (self.start_time(), self.end_time()) {
            (Some(a), Some(b)) => b - a,
            _ => 0.0,
        }
    }

    /// Shift every submit time so the first job arrives at `origin`,
    /// renumbering ids from 0. Used when extracting experiment sequences.
    pub fn rebased(&self, origin: f64) -> Trace {
        let Some(first) = self.start_time() else {
            return Trace::default();
        };
        let jobs = self
            .jobs
            .iter()
            .enumerate()
            .map(|(i, j)| {
                Job::new(
                    i as u32,
                    origin + (j.submit - first),
                    j.runtime,
                    j.estimate,
                    j.cores,
                )
            })
            .collect();
        Trace { jobs }
    }

    /// Keep only jobs whose submit time falls in `[from, to)`.
    pub fn window(&self, from: f64, to: f64) -> Trace {
        let jobs = self
            .jobs
            .iter()
            .filter(|j| j.submit >= from && j.submit < to)
            .copied()
            .collect();
        Trace::from_jobs(jobs)
    }

    /// Keep only jobs that fit on a platform with `max_cores` cores.
    /// Archive logs occasionally contain jobs wider than the stated
    /// partition; they can never start and must be dropped.
    pub fn capped_to(&self, max_cores: u32) -> Trace {
        let jobs = self
            .jobs
            .iter()
            .filter(|j| j.cores <= max_cores)
            .copied()
            .collect();
        Trace::from_jobs(jobs)
    }

    /// Total core-seconds of work in the trace.
    pub fn total_area(&self) -> f64 {
        self.jobs.iter().map(|j| j.area()).sum()
    }

    /// Columnarize into a fresh shareable [`TraceView`](crate::store::TraceView)
    /// (uninterned; route through a [`TraceStore`](crate::store::TraceStore)
    /// when the trace has a generation key worth sharing under).
    pub fn to_view(&self) -> crate::store::TraceView {
        crate::store::TraceView::from_trace(self)
    }

    /// Compute summary statistics. Returns `None` for an empty trace.
    pub fn summary(&self, platform_cores: u32) -> Option<TraceSummary> {
        if self.jobs.is_empty() {
            return None;
        }
        let n = self.jobs.len() as f64;
        let span = self.span();
        let mean_runtime = self.jobs.iter().map(|j| j.runtime).sum::<f64>() / n;
        let mean_cores = self.jobs.iter().map(|j| j.cores as f64).sum::<f64>() / n;
        let mean_interarrival = if self.jobs.len() > 1 {
            span / (n - 1.0)
        } else {
            0.0
        };
        let offered_load = if span > 0.0 {
            self.total_area() / (platform_cores as f64 * span)
        } else {
            f64::INFINITY
        };
        let max_cores = self.jobs.iter().map(|j| j.cores).max().unwrap();
        let serial_fraction = self.jobs.iter().filter(|j| j.cores == 1).count() as f64 / n;
        let pow2_fraction = self
            .jobs
            .iter()
            .filter(|j| j.cores.is_power_of_two() && j.cores > 1)
            .count() as f64
            / n;
        Some(TraceSummary {
            jobs: self.jobs.len(),
            span_seconds: span,
            mean_runtime,
            mean_cores,
            mean_interarrival,
            offered_load,
            max_cores,
            serial_fraction,
            pow2_fraction,
        })
    }
}

/// Aggregate statistics of a trace relative to a platform size.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceSummary {
    /// Number of jobs.
    pub jobs: usize,
    /// Seconds between first and last submission.
    pub span_seconds: f64,
    /// Mean actual runtime (s).
    pub mean_runtime: f64,
    /// Mean requested cores.
    pub mean_cores: f64,
    /// Mean inter-arrival time (s).
    pub mean_interarrival: f64,
    /// Offered load: total area / (capacity × span). The long-run
    /// utilization cannot exceed `min(offered_load, 1)`.
    pub offered_load: f64,
    /// Widest job in the trace.
    pub max_cores: u32,
    /// Fraction of single-core jobs.
    pub serial_fraction: f64,
    /// Fraction of parallel power-of-two-sized jobs.
    pub pow2_fraction: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(id: u32, submit: f64, runtime: f64, cores: u32) -> Job {
        Job::new(id, submit, runtime, runtime, cores)
    }

    #[test]
    fn from_jobs_sorts_by_submit_then_id() {
        let t = Trace::from_jobs(vec![
            job(2, 5.0, 1.0, 1),
            job(1, 5.0, 1.0, 1),
            job(0, 1.0, 1.0, 1),
        ]);
        let ids: Vec<u32> = t.jobs().iter().map(|j| j.id).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn window_is_half_open() {
        let t = Trace::from_jobs((0..10).map(|i| job(i, i as f64, 1.0, 1)).collect());
        let w = t.window(2.0, 5.0);
        let submits: Vec<f64> = w.jobs().iter().map(|j| j.submit).collect();
        assert_eq!(submits, vec![2.0, 3.0, 4.0]);
    }

    #[test]
    fn rebase_shifts_and_renumbers() {
        let t = Trace::from_jobs(vec![job(7, 100.0, 2.0, 1), job(9, 130.0, 3.0, 2)]);
        let r = t.rebased(0.0);
        assert_eq!(r.jobs()[0].id, 0);
        assert_eq!(r.jobs()[0].submit, 0.0);
        assert_eq!(r.jobs()[1].submit, 30.0);
        assert_eq!(r.jobs()[1].cores, 2);
    }

    #[test]
    fn rebase_empty_is_empty() {
        assert!(Trace::default().rebased(0.0).is_empty());
    }

    #[test]
    fn capped_drops_oversized() {
        let t = Trace::from_jobs(vec![job(0, 0.0, 1.0, 4), job(1, 1.0, 1.0, 500)]);
        let c = t.capped_to(256);
        assert_eq!(c.len(), 1);
        assert_eq!(c.jobs()[0].cores, 4);
    }

    #[test]
    fn summary_offered_load() {
        // Two jobs of area 100 each over a 100 s span on 10 cores:
        // offered load = 200 / (10*100) = 0.2.
        let t = Trace::from_jobs(vec![job(0, 0.0, 10.0, 10), job(1, 100.0, 100.0, 1)]);
        let s = t.summary(10).unwrap();
        assert!((s.offered_load - 0.2).abs() < 1e-12);
        assert_eq!(s.jobs, 2);
        assert_eq!(s.max_cores, 10);
        assert!((s.serial_fraction - 0.5).abs() < 1e-12);
    }

    #[test]
    fn summary_empty_is_none() {
        assert!(Trace::default().summary(16).is_none());
    }

    #[test]
    fn pow2_fraction_excludes_serial() {
        let t = Trace::from_jobs(vec![
            job(0, 0.0, 1.0, 1),
            job(1, 1.0, 1.0, 4),
            job(2, 2.0, 1.0, 3),
        ]);
        let s = t.summary(8).unwrap();
        assert!((s.pow2_fraction - 1.0 / 3.0).abs() < 1e-12);
    }
}
