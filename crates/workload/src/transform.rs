//! Trace transformations used in workload studies.
//!
//! Standard manipulations from the workload-modelling literature (Feitelson
//! et al. 2014, "Experience with using the Parallel Workloads Archive"):
//! load scaling by stretching/compressing inter-arrival gaps, platform
//! rescaling that remaps job widths between machines of different sizes,
//! and shuffling user estimates to probe estimate sensitivity.

use crate::trace::Trace;
use dynsched_cluster::Job;
use dynsched_simkit::Rng;

/// Scale the offered load by dividing every inter-arrival gap by `factor`
/// (`factor > 1` compresses arrivals → higher load). Job shapes are
/// untouched; the first job keeps its submit time.
///
/// # Panics
/// Panics if `factor` is not strictly positive and finite.
pub fn scale_load(trace: &Trace, factor: f64) -> Trace {
    assert!(
        factor > 0.0 && factor.is_finite(),
        "bad load factor {factor}"
    );
    let jobs = trace.jobs();
    let Some(first) = jobs.first() else {
        return Trace::default();
    };
    let origin = first.submit;
    let scaled = jobs
        .iter()
        .map(|j| {
            Job::new(
                j.id,
                origin + (j.submit - origin) / factor,
                j.runtime,
                j.estimate,
                j.cores,
            )
        })
        .collect();
    Trace::from_jobs(scaled)
}

/// Remap job widths from a `from_cores`-wide machine onto a
/// `to_cores`-wide one, preserving each job's *fraction* of the machine
/// (the archive community's standard resizing). Serial jobs stay serial;
/// power-of-two sizes stay powers of two when the ratio itself is one.
///
/// # Panics
/// Panics if either core count is zero.
pub fn rescale_platform(trace: &Trace, from_cores: u32, to_cores: u32) -> Trace {
    assert!(
        from_cores > 0 && to_cores > 0,
        "core counts must be positive"
    );
    let ratio = to_cores as f64 / from_cores as f64;
    let jobs = trace
        .jobs()
        .iter()
        .map(|j| {
            let cores = if j.cores == 1 {
                1
            } else {
                ((j.cores as f64 * ratio).round() as u32).clamp(1, to_cores)
            };
            Job::new(j.id, j.submit, j.runtime, j.estimate, cores)
        })
        .collect();
    Trace::from_jobs(jobs)
}

/// Randomly permute the estimates among jobs (keeping each job's own
/// runtime). Preserves the *marginal* estimate distribution while
/// destroying the per-job runtime–estimate correlation — the classic probe
/// for "do schedulers exploit estimate accuracy?". Estimates below the
/// receiving job's runtime are clamped up to it so simulation semantics
/// stay valid.
pub fn shuffle_estimates(trace: &Trace, rng: &mut Rng) -> Trace {
    let jobs = trace.jobs();
    let mut estimates: Vec<f64> = jobs.iter().map(|j| j.estimate).collect();
    rng.shuffle(&mut estimates);
    let shuffled = jobs
        .iter()
        .zip(&estimates)
        .map(|(j, &e)| Job::new(j.id, j.submit, j.runtime, e.max(j.runtime), j.cores))
        .collect();
    Trace::from_jobs(shuffled)
}

/// Replace every estimate with the actual runtime (perfect clairvoyance) —
/// the oracle bound for estimate-sensitivity studies.
pub fn perfect_estimates(trace: &Trace) -> Trace {
    let jobs = trace
        .jobs()
        .iter()
        .map(|j| Job::new(j.id, j.submit, j.runtime, j.runtime, j.cores))
        .collect();
    Trace::from_jobs(jobs)
}

/// Concentrate arrivals into periodic bursts: each period of `period`
/// seconds keeps all of its submissions, but they are remapped (affinely,
/// order-preserving) into the first `duty` fraction of the period — an
/// on/off arrival process with the original per-period job mix. `duty = 1`
/// is the identity; small duties produce the queueing spikes that separate
/// policies hardest. Used by the `bursty` and `diurnal` scenario families.
///
/// # Panics
/// Panics if `period` is not strictly positive/finite or `duty` is outside
/// `(0, 1]`.
pub fn burstify(trace: &Trace, period: f64, duty: f64) -> Trace {
    assert!(
        period > 0.0 && period.is_finite(),
        "bad burst period {period}"
    );
    assert!(
        duty > 0.0 && duty <= 1.0,
        "burst duty {duty} outside (0, 1]"
    );
    let jobs = trace
        .jobs()
        .iter()
        .map(|j| {
            let phase = j.submit.rem_euclid(period);
            let submit = j.submit - phase + phase * duty;
            Job::new(j.id, submit, j.runtime, j.estimate, j.cores)
        })
        .collect();
    Trace::from_jobs(jobs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(id: u32, submit: f64, runtime: f64, estimate: f64, cores: u32) -> Job {
        Job::new(id, submit, runtime, estimate, cores)
    }

    fn base() -> Trace {
        Trace::from_jobs(vec![
            job(0, 100.0, 50.0, 60.0, 1),
            job(1, 200.0, 500.0, 900.0, 8),
            job(2, 400.0, 20.0, 3_600.0, 64),
        ])
    }

    #[test]
    fn scale_load_compresses_gaps() {
        let t = scale_load(&base(), 2.0);
        let submits: Vec<f64> = t.jobs().iter().map(|j| j.submit).collect();
        assert_eq!(submits, vec![100.0, 150.0, 250.0]);
        // Offered load doubles (same area, half the span).
        let before = base().summary(64).unwrap().offered_load;
        let after = t.summary(64).unwrap().offered_load;
        assert!((after / before - 2.0).abs() < 1e-9);
    }

    #[test]
    fn scale_load_below_one_stretches() {
        let t = scale_load(&base(), 0.5);
        assert_eq!(t.jobs()[2].submit, 700.0);
    }

    #[test]
    fn rescale_preserves_fractions() {
        let t = rescale_platform(&base(), 64, 256);
        let cores: Vec<u32> = t.jobs().iter().map(|j| j.cores).collect();
        assert_eq!(cores, vec![1, 32, 256]); // serial stays serial; 8/64 -> 32/256
    }

    #[test]
    fn rescale_down_clamps_to_platform() {
        let t = rescale_platform(&base(), 64, 16);
        for j in t.jobs() {
            assert!(j.cores <= 16);
            assert!(j.cores >= 1);
        }
    }

    #[test]
    fn shuffle_preserves_multiset_and_validity() {
        let mut rng = Rng::new(3);
        let t = shuffle_estimates(&base(), &mut rng);
        for j in t.jobs() {
            assert!(j.estimate >= j.runtime, "estimate clamped to runtime");
        }
        // Runtimes untouched.
        for (a, b) in base().jobs().iter().zip(t.jobs()) {
            assert_eq!(a.runtime, b.runtime);
        }
    }

    #[test]
    fn perfect_estimates_equal_runtimes() {
        let t = perfect_estimates(&base());
        for j in t.jobs() {
            assert_eq!(j.estimate, j.runtime);
        }
    }

    #[test]
    fn empty_traces_pass_through() {
        assert!(scale_load(&Trace::default(), 2.0).is_empty());
        assert!(rescale_platform(&Trace::default(), 4, 8).is_empty());
    }

    #[test]
    #[should_panic]
    fn zero_load_factor_rejected() {
        scale_load(&base(), 0.0);
    }

    #[test]
    fn burstify_compresses_into_duty_window() {
        // Period 1000, duty 0.2: every arrival lands in [k*1000, k*1000+200).
        let t = Trace::from_jobs(
            (0..40)
                .map(|i| job(i, i as f64 * 97.0, 10.0, 10.0, 1))
                .collect(),
        );
        let b = burstify(&t, 1_000.0, 0.2);
        assert_eq!(b.len(), t.len());
        for j in b.jobs() {
            assert!(j.submit.rem_euclid(1_000.0) < 200.0 + 1e-9, "{}", j.submit);
        }
        // Order within a period is preserved; duty 1 is the identity.
        assert_eq!(burstify(&t, 1_000.0, 1.0), t);
    }

    #[test]
    #[should_panic]
    fn bad_duty_rejected() {
        burstify(&base(), 100.0, 0.0);
    }
}
