//! The Tsafrir–Etsion–Feitelson user runtime-estimate model.
//!
//! Tsafrir et al. (JSSPP 2005) observed that user-provided walltime
//! estimates on production machines are **modal**: a small menu of round
//! values ("1 hour", "30 minutes", "4 hours", …) covers the vast majority of
//! jobs, about twenty values cover ~90%, estimates almost always
//! over-estimate (jobs exceeding their estimate are killed), and the
//! accuracy ratio `r/e` is spread widely over `(0, 1]` with a spike at 1.
//!
//! This module reproduces those properties: each job draws a target
//! accuracy from a spiked-uniform distribution, divides its actual runtime
//! by it, and rounds the result *up* to the next canonical round value. The
//! original model's exact per-mode popularity table could not be consulted
//! offline; the emergent popularity here is induced by the runtime
//! distribution and the round-value menu, which preserves the modal,
//! over-estimating structure the scheduling experiments are sensitive to.

use crate::trace::Trace;
use dynsched_cluster::Job;
use dynsched_simkit::Rng;
use serde::{Deserialize, Serialize};

/// Canonical round estimate values, in seconds: 1–45 minutes, then round
/// hour counts up to 3 days. This is the "menu" users pick walltimes from.
pub const ROUND_VALUES: [f64; 24] = [
    60.0, 120.0, 300.0, 600.0, 900.0, 1_200.0, 1_800.0, 2_700.0, 3_600.0, 5_400.0, 7_200.0,
    10_800.0, 14_400.0, 18_000.0, 21_600.0, 28_800.0, 36_000.0, 43_200.0, 57_600.0, 64_800.0,
    86_400.0, 129_600.0, 172_800.0, 259_200.0,
];

/// Configuration of the estimate generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TsafrirEstimates {
    /// Ascending menu of allowed estimate values (seconds).
    pub round_values: Vec<f64>,
    /// Probability that the user's estimate is exact (`e` is the smallest
    /// round value ≥ `r`, i.e. the job "runs into" its estimate).
    pub exact_hit_prob: f64,
    /// Lower bound of the accuracy ratio `r/e` for the non-exact case.
    pub min_accuracy: f64,
    /// Hard ceiling (site maximum walltime), seconds.
    pub max_estimate: f64,
}

impl Default for TsafrirEstimates {
    fn default() -> Self {
        Self {
            round_values: ROUND_VALUES.to_vec(),
            exact_hit_prob: 0.15,
            min_accuracy: 0.05,
            max_estimate: *ROUND_VALUES.last().unwrap(),
        }
    }
}

impl TsafrirEstimates {
    /// Model with the default menu and a custom site walltime limit.
    pub fn with_max_estimate(max_estimate: f64) -> Self {
        assert!(max_estimate > 0.0, "max estimate must be positive");
        Self {
            max_estimate,
            ..Self::default()
        }
    }

    /// Smallest round value ≥ `x`, or the ceiling if `x` exceeds the menu.
    fn round_up(&self, x: f64) -> f64 {
        for &v in &self.round_values {
            if v >= x {
                return v.min(self.max_estimate);
            }
        }
        self.max_estimate
    }

    /// Draw an estimate for a job with actual runtime `runtime`.
    ///
    /// Guarantees `estimate >= runtime` (users whose jobs would be killed
    /// immediately don't exist in the traces) and `estimate` is a round
    /// value unless the runtime itself exceeds the menu ceiling.
    pub fn estimate_for(&self, runtime: f64, rng: &mut Rng) -> f64 {
        assert!(
            runtime >= 0.0 && runtime.is_finite(),
            "bad runtime {runtime}"
        );
        if runtime >= self.max_estimate {
            // Over-limit job: the user requested exactly the site maximum
            // (such jobs exist in archive logs); keep e >= r so the
            // simulation semantics stay consistent.
            return runtime;
        }
        let accuracy = if rng.chance(self.exact_hit_prob) {
            1.0
        } else {
            rng.range_f64(self.min_accuracy, 1.0)
        };
        let target = runtime / accuracy;
        self.round_up(target.max(runtime)).max(runtime)
    }

    /// Return a copy of `trace` with fresh estimates for every job.
    pub fn apply(&self, trace: &Trace, rng: &mut Rng) -> Trace {
        let jobs = trace
            .jobs()
            .iter()
            .map(|j| {
                Job::new(
                    j.id,
                    j.submit,
                    j.runtime,
                    self.estimate_for(j.runtime, rng),
                    j.cores,
                )
            })
            .collect();
        Trace::from_jobs(jobs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn menu_is_ascending() {
        for w in ROUND_VALUES.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn estimates_never_below_runtime() {
        let m = TsafrirEstimates::default();
        let mut rng = Rng::new(1);
        for i in 1..5_000 {
            let r = (i as f64) * 37.0 % 90_000.0 + 1.0;
            let e = m.estimate_for(r, &mut rng);
            assert!(e >= r, "estimate {e} < runtime {r}");
        }
    }

    #[test]
    fn estimates_are_modal() {
        let m = TsafrirEstimates::default();
        let mut rng = Rng::new(2);
        let mut on_menu = 0;
        let n = 10_000;
        for i in 0..n {
            let r = 10.0 + (i as f64 * 7.3) % 20_000.0;
            let e = m.estimate_for(r, &mut rng);
            if m.round_values.contains(&e) {
                on_menu += 1;
            }
        }
        assert!(on_menu as f64 / n as f64 > 0.99, "menu hits {on_menu}/{n}");
    }

    #[test]
    fn accuracy_spike_at_one() {
        // With exact_hit_prob = 0.15 and rounding-up, the smallest round
        // value >= r is chosen noticeably often.
        let m = TsafrirEstimates::default();
        let mut rng = Rng::new(3);
        let n = 10_000;
        let mut tight = 0;
        for i in 0..n {
            let r = 100.0 + (i as f64 * 13.7) % 10_000.0;
            let e = m.estimate_for(r, &mut rng);
            if e == m.round_up(r) {
                tight += 1;
            }
        }
        assert!(tight as f64 / n as f64 > 0.15);
    }

    #[test]
    fn over_limit_jobs_keep_e_geq_r() {
        let m = TsafrirEstimates::default();
        let mut rng = Rng::new(4);
        let r = 500_000.0; // beyond the 3-day menu ceiling
        let e = m.estimate_for(r, &mut rng);
        assert!(e >= r);
    }

    #[test]
    fn estimates_overestimate_on_average() {
        let m = TsafrirEstimates::default();
        let mut rng = Rng::new(5);
        let n = 20_000;
        let mut sum_acc = 0.0;
        for i in 0..n {
            let r = 50.0 + (i as f64 * 11.1) % 30_000.0;
            let e = m.estimate_for(r, &mut rng);
            sum_acc += r / e;
        }
        let mean_acc = sum_acc / n as f64;
        assert!(
            mean_acc > 0.25 && mean_acc < 0.85,
            "mean accuracy {mean_acc} outside the plausible band"
        );
    }

    #[test]
    fn apply_preserves_everything_but_estimates() {
        let t = Trace::from_jobs(vec![
            Job::new(0, 0.0, 100.0, 100.0, 4),
            Job::new(1, 60.0, 3_000.0, 3_000.0, 16),
        ]);
        let m = TsafrirEstimates::default();
        let mut rng = Rng::new(6);
        let t2 = m.apply(&t, &mut rng);
        assert_eq!(t2.len(), 2);
        for (a, b) in t.jobs().iter().zip(t2.jobs()) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.submit, b.submit);
            assert_eq!(a.runtime, b.runtime);
            assert_eq!(a.cores, b.cores);
            assert!(b.estimate >= b.runtime);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let m = TsafrirEstimates::default();
        let mut a = Rng::new(7);
        let mut b = Rng::new(7);
        for i in 0..200 {
            let r = 10.0 + i as f64 * 91.0;
            assert_eq!(m.estimate_for(r, &mut a), m.estimate_for(r, &mut b));
        }
    }
}
