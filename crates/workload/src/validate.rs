//! Trace sanity checking.
//!
//! Archive logs and generated traces both contain surprises (zero
//! runtimes, estimates below runtimes, jobs wider than the machine,
//! out-of-order submits after conversion bugs). The experiment harness
//! assumes a clean trace; this module audits one and reports everything a
//! study should know about before trusting its numbers — the checks the
//! archive community recommends running on every log.

use crate::trace::Trace;
use serde::{Deserialize, Serialize};

/// Severity of a finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Severity {
    /// The trace is unusable for scheduling experiments as-is.
    Error,
    /// Usable, but results need a caveat.
    Warning,
    /// Informational.
    Info,
}

/// One audit finding.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Finding {
    /// How serious it is.
    pub severity: Severity,
    /// Machine-readable code (stable across releases).
    pub code: &'static str,
    /// Human-readable description with counts.
    pub message: String,
}

/// Audit report for one trace against one platform width.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ValidationReport {
    /// All findings, errors first.
    pub findings: Vec<Finding>,
}

impl ValidationReport {
    /// Whether the trace can be simulated without preprocessing.
    pub fn is_usable(&self) -> bool {
        self.findings.iter().all(|f| f.severity != Severity::Error)
    }

    /// Findings of a given severity.
    pub fn of_severity(&self, severity: Severity) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(move |f| f.severity == severity)
    }

    /// Render as a human-readable report.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        if self.findings.is_empty() {
            let _ = writeln!(out, "trace is clean");
            return out;
        }
        for f in &self.findings {
            let tag = match f.severity {
                Severity::Error => "ERROR",
                Severity::Warning => "WARN ",
                Severity::Info => "INFO ",
            };
            let _ = writeln!(out, "{tag} [{}] {}", f.code, f.message);
        }
        out
    }
}

/// Audit `trace` for use on a `platform_cores`-wide machine.
pub fn validate_trace(trace: &Trace, platform_cores: u32) -> ValidationReport {
    let mut findings = Vec::new();
    let jobs = trace.jobs();

    if jobs.is_empty() {
        findings.push(Finding {
            severity: Severity::Error,
            code: "empty",
            message: "trace contains no jobs".to_string(),
        });
        return ValidationReport { findings };
    }

    let oversized = jobs.iter().filter(|j| j.cores > platform_cores).count();
    if oversized > 0 {
        findings.push(Finding {
            severity: Severity::Error,
            code: "oversized-jobs",
            message: format!(
                "{oversized} jobs request more than {platform_cores} cores and can never start \
                 (drop them with Trace::capped_to)"
            ),
        });
    }

    let under_estimated = jobs.iter().filter(|j| j.estimate < j.runtime).count();
    if under_estimated > 0 {
        findings.push(Finding {
            severity: Severity::Warning,
            code: "estimate-below-runtime",
            message: format!(
                "{under_estimated} jobs have estimates below their runtime; with \
                 kill_at_estimate they will be cut short, and EASY shadow times will be optimistic"
            ),
        });
    }

    let sub_second = jobs.iter().filter(|j| j.runtime < 1.0).count();
    if sub_second > 0 {
        findings.push(Finding {
            severity: Severity::Warning,
            code: "sub-second-runtimes",
            message: format!(
                "{sub_second} jobs run under one second; bounded-slowdown values for them are \
                 dominated by the tau clamp"
            ),
        });
    }

    // Large silent gaps distort sequence extraction (empty windows).
    let mut max_gap = 0.0f64;
    for w in jobs.windows(2) {
        max_gap = max_gap.max(w[1].submit - w[0].submit);
    }
    if max_gap > 3.0 * 86_400.0 {
        findings.push(Finding {
            severity: Severity::Warning,
            code: "arrival-gap",
            message: format!(
                "largest arrival gap is {:.1} days; 15-day windows may come up empty \
                 (machine downtime in the log?)",
                max_gap / 86_400.0
            ),
        });
    }

    if let Some(summary) = trace.summary(platform_cores) {
        if summary.offered_load > 1.0 {
            findings.push(Finding {
                severity: Severity::Info,
                code: "over-offered",
                message: format!(
                    "offered load {:.2} exceeds 1: the machine cannot drain in real time and \
                     queues grow through the horizon",
                    summary.offered_load
                ),
            });
        }
        findings.push(Finding {
            severity: Severity::Info,
            code: "summary",
            message: format!(
                "{} jobs over {:.1} days, offered load {:.2}, serial fraction {:.2}, max width {}",
                summary.jobs,
                summary.span_seconds / 86_400.0,
                summary.offered_load,
                summary.serial_fraction,
                summary.max_cores
            ),
        });
    }

    findings.sort_by_key(|f| match f.severity {
        Severity::Error => 0,
        Severity::Warning => 1,
        Severity::Info => 2,
    });
    ValidationReport { findings }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynsched_cluster::Job;

    fn job(id: u32, submit: f64, runtime: f64, estimate: f64, cores: u32) -> Job {
        Job::new(id, submit, runtime, estimate, cores)
    }

    #[test]
    fn clean_trace_is_usable() {
        let t = Trace::from_jobs(vec![
            job(0, 0.0, 100.0, 200.0, 4),
            job(1, 60.0, 500.0, 600.0, 8),
        ]);
        let report = validate_trace(&t, 64);
        assert!(report.is_usable());
        assert!(report.of_severity(Severity::Error).count() == 0);
        // Always carries the summary info line.
        assert!(report.findings.iter().any(|f| f.code == "summary"));
    }

    #[test]
    fn oversized_jobs_are_errors() {
        let t = Trace::from_jobs(vec![job(0, 0.0, 10.0, 10.0, 128)]);
        let report = validate_trace(&t, 64);
        assert!(!report.is_usable());
        assert!(report.findings.iter().any(|f| f.code == "oversized-jobs"));
        // capped_to fixes it.
        let fixed = validate_trace(&t.capped_to(64), 64);
        assert!(fixed.findings.iter().any(|f| f.code == "empty"));
    }

    #[test]
    fn underestimates_are_warnings() {
        let t = Trace::from_jobs(vec![job(0, 0.0, 100.0, 10.0, 2)]);
        let report = validate_trace(&t, 64);
        assert!(report.is_usable());
        assert!(report
            .findings
            .iter()
            .any(|f| f.code == "estimate-below-runtime"));
    }

    #[test]
    fn big_gaps_flagged() {
        let t = Trace::from_jobs(vec![
            job(0, 0.0, 10.0, 10.0, 1),
            job(1, 10.0 * 86_400.0, 10.0, 10.0, 1),
        ]);
        let report = validate_trace(&t, 64);
        assert!(report.findings.iter().any(|f| f.code == "arrival-gap"));
    }

    #[test]
    fn empty_trace_is_error() {
        let report = validate_trace(&Trace::default(), 64);
        assert!(!report.is_usable());
    }

    #[test]
    fn render_contains_tags() {
        let t = Trace::from_jobs(vec![job(0, 0.0, 0.5, 0.5, 128)]);
        let text = validate_trace(&t, 64).render();
        assert!(text.contains("ERROR"));
        assert!(text.contains("WARN"));
        assert!(text.contains("sub-second"));
    }

    #[test]
    fn errors_sort_first() {
        let t = Trace::from_jobs(vec![job(0, 0.0, 0.5, 0.4, 128)]);
        let report = validate_trace(&t, 64);
        assert_eq!(report.findings[0].severity, Severity::Error);
    }
}
