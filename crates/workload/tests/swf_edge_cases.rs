//! Edge-case coverage for the SWF parser.
//!
//! The real-trace scenarios feed the learning/evaluation pipeline through
//! this parser, so its behaviour on dirty archive logs must be
//! deterministic: malformed lines error with a precise location,
//! out-of-order submits normalize to one canonical trace order, and
//! degenerate records (zero runtimes, negative fields) are clamped or
//! dropped by documented rules — never silently reshuffled.

use dynsched_workload::swf::{
    parse_swf, parse_swf_trace, parse_swf_with_header, write_swf, SwfRecord,
};

fn line(fields: &[&str]) -> String {
    fields.join(" ")
}

/// An 18-field data line with the given job number, submit, runtime and
/// processor count; all other fields "unknown".
fn data_line(job: i64, submit: f64, runtime: f64, procs: i64) -> String {
    line(&[
        &job.to_string(),
        &submit.to_string(),
        "-1",
        &runtime.to_string(),
        &procs.to_string(),
        "-1",
        "-1",
        &procs.to_string(),
        "-1",
        "-1",
        "1",
        "1",
        "1",
        "-1",
        "1",
        "1",
        "-1",
        "-1",
    ])
}

#[test]
fn comment_only_and_blank_documents_parse_to_empty_traces() {
    for src in ["", "\n\n\n", "; just a header\n; Computer: X\n", ";\n\n;\n"] {
        let (comments, records) = parse_swf(src).unwrap();
        assert!(records.is_empty(), "{src:?}");
        let trace = parse_swf_trace(src).unwrap();
        assert!(trace.is_empty());
        // Comments survive even when no data does.
        if src.contains("Computer") {
            assert!(comments.iter().any(|c| c.contains("Computer")));
        }
    }
}

#[test]
fn short_lines_error_with_their_line_number() {
    let src = format!("; header\n{}\n1 2 3 4\n", data_line(1, 0.0, 10.0, 2));
    let err = parse_swf(&src).unwrap_err();
    assert_eq!(err.line, 3);
    assert!(err.message.contains("18 fields"));
    assert!(err.message.contains("found 4"));
}

#[test]
fn malformed_fields_error_with_line_and_field() {
    // Field 9 (requested time) is garbage on line 2.
    let good = data_line(1, 0.0, 10.0, 2);
    let mut fields: Vec<String> = good.split_whitespace().map(String::from).collect();
    fields[8] = "12:00:00".to_string();
    let src = format!("{good}\n{}\n", fields.join(" "));
    let err = parse_swf(&src).unwrap_err();
    assert_eq!(err.line, 2);
    assert!(err.message.contains("field 9"), "{}", err.message);
    // Errors are values, not panics — parsing the good line alone works.
    assert!(parse_swf(&good).is_ok());
}

#[test]
fn error_positions_count_comments_and_blanks() {
    let src = format!(
        "; one\n\n; two\n{}\nbad line here\n",
        data_line(1, 0.0, 5.0, 1)
    );
    let err = parse_swf(&src).unwrap_err();
    assert_eq!(err.line, 5, "line numbers must include comments and blanks");
}

#[test]
fn out_of_order_submits_normalize_to_one_canonical_order() {
    // Archive logs are *usually* submit-sorted but not always; the trace
    // must come out in (submit, id) order no matter the input order.
    let shuffled = format!(
        "{}\n{}\n{}\n{}\n",
        data_line(1, 500.0, 10.0, 1),
        data_line(2, 0.0, 20.0, 2),
        data_line(3, 250.0, 30.0, 4),
        data_line(4, 0.0, 40.0, 8),
    );
    let trace = parse_swf_trace(&shuffled).unwrap();
    let submits: Vec<f64> = trace.jobs().iter().map(|j| j.submit).collect();
    assert_eq!(submits, vec![0.0, 0.0, 250.0, 500.0]);
    // Equal submits tie-break on the id assigned in file order, so the
    // 20s job (earlier in the file) precedes the 40s job.
    assert_eq!(trace.jobs()[0].runtime, 20.0);
    assert_eq!(trace.jobs()[1].runtime, 40.0);
    // Determinism: reparsing gives the identical trace.
    assert_eq!(trace, parse_swf_trace(&shuffled).unwrap());
}

#[test]
fn zero_runtime_jobs_are_kept_and_clamped() {
    // Sub-second / zero runtimes appear in real logs (instantly-failing
    // jobs); the simulator needs strictly positive runtimes, so they
    // clamp to 1 s — deterministically, not probabilistically.
    let src = format!(
        "{}\n{}\n",
        data_line(1, 0.0, 0.0, 2),
        data_line(2, 5.0, 0.0, 1)
    );
    let trace = parse_swf_trace(&src).unwrap();
    assert_eq!(trace.len(), 2);
    for job in trace.jobs() {
        assert_eq!(job.runtime, 1.0);
        assert!(job.estimate >= job.runtime);
    }
}

#[test]
fn unusable_records_are_dropped_by_documented_rules() {
    let src = format!(
        "{}\n{}\n{}\n{}\n",
        data_line(1, 0.0, 10.0, 2),   // fine
        data_line(2, 10.0, -1.0, 2),  // no runtime → dropped
        data_line(3, 20.0, 10.0, -1), // no procs (allocated & requested -1) → dropped
        data_line(4, -5.0, 10.0, 2),  // negative submit → dropped
    );
    let trace = parse_swf_trace(&src).unwrap();
    assert_eq!(trace.len(), 1);
    assert_eq!(trace.jobs()[0].cores, 2);
    // The raw record layer still surfaces all four for auditing.
    let (_, records) = parse_swf(&src).unwrap();
    assert_eq!(records.len(), 4);
    assert_eq!(records[1].to_job(0), None);
    assert_eq!(records[2].to_job(0), None);
    assert_eq!(records[3].to_job(0), None);
}

#[test]
fn extra_trailing_fields_are_tolerated() {
    // Some archive conversions append extra columns; they must not break
    // the 18-field core.
    let src = format!("{} 99 98 97\n", data_line(7, 3.0, 60.0, 4));
    let (_, records) = parse_swf(&src).unwrap();
    assert_eq!(records.len(), 1);
    assert_eq!(records[0].job_number, 7);
    assert_eq!(records[0].think_time, -1.0);
}

#[test]
fn integer_fields_written_as_floats_parse() {
    let good = data_line(1, 0.0, 10.0, 2);
    let mut fields: Vec<String> = good.split_whitespace().map(String::from).collect();
    fields[4] = "4.0".to_string(); // allocated procs as float
    fields[10] = "1.0".to_string(); // status as float
    let (_, records) = parse_swf(&fields.join(" ")).unwrap();
    assert_eq!(records[0].allocated_procs, 4);
    assert_eq!(records[0].status, 1);
}

#[test]
fn mid_document_comments_are_collected_with_the_header() {
    let src = format!(
        "; head\n{}\n; interleaved note\n{}\n",
        data_line(1, 0.0, 10.0, 1),
        data_line(2, 5.0, 10.0, 1),
    );
    let (comments, records) = parse_swf(&src).unwrap();
    assert_eq!(records.len(), 2);
    assert_eq!(
        comments,
        vec!["head".to_string(), "interleaved note".to_string()]
    );
}

#[test]
fn header_and_trace_survive_a_write_parse_roundtrip_with_dirty_input() {
    let src = format!(
        "; MaxProcs: 64\n{}\n{}\n",
        data_line(2, 100.0, 0.0, 8),
        data_line(1, 0.0, 50.0, 4),
    );
    let (header, trace) = parse_swf_with_header(&src).unwrap();
    assert_eq!(header.max_procs, Some(64));
    assert_eq!(trace.len(), 2);
    // Write the normalized trace back out and reparse: stable fixpoint.
    let records: Vec<SwfRecord> = trace.jobs().iter().map(SwfRecord::from_job).collect();
    let text = write_swf(&["MaxProcs: 64".to_string()], &records);
    let (header2, trace2) = parse_swf_with_header(&text).unwrap();
    assert_eq!(header2.max_procs, Some(64));
    // Ids are assigned in file order, so the normalized rewrite renumbers
    // them; everything the simulation reads is a fixpoint.
    assert_eq!(trace2.len(), trace.len());
    for (a, b) in trace.jobs().iter().zip(trace2.jobs()) {
        assert_eq!(
            (a.submit, a.runtime, a.estimate, a.cores),
            (b.submit, b.runtime, b.estimate, b.cores)
        );
    }
}
