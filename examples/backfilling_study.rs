//! Backfilling ablation: none vs aggressive (EASY) vs conservative.
//!
//! The paper evaluates aggressive backfilling only (§4.2.3); this example
//! extends the comparison with conservative backfilling and reports, per
//! policy: median AVEbsld, mean backfilled jobs per sequence, and mean
//! utilization — showing the paper's observation that *better-sorted
//! queues leave fewer backfilling opportunities*.
//!
//! Run with: `cargo run --release --example backfilling_study`

use dynsched::cluster::Platform;
use dynsched::core::scenarios::ScenarioScale;
use dynsched::core::{run_experiments, Experiment};
use dynsched::policies::paper_lineup;
use dynsched::scheduler::{BackfillMode, SchedulerConfig};
use dynsched::simkit::Rng;
use dynsched::workload::{extract_sequences, LublinModel, SequenceSpec, TsafrirEstimates};

fn main() {
    let scale = ScenarioScale {
        spec: SequenceSpec {
            count: 5,
            days: 3.0,
            min_jobs: 10,
        },
        ..ScenarioScale::default()
    };
    let nmax = 256u32;
    let mut rng = Rng::new(scale.seed);
    let model = LublinModel::new(nmax).calibrated_to_load(scale.model_target_load, &mut rng);
    let span = scale.spec.days * (scale.spec.count as f64 + 1.0) * 86_400.0;
    let trace = model.generate_span(span, &mut rng);
    let trace = TsafrirEstimates::with_max_estimate(model.max_runtime).apply(&trace, &mut rng);
    let sequences = extract_sequences(&trace, &scale.spec).expect("enough windows");
    println!(
        "Workload model, {nmax} cores, {} sequences x {} days, user estimates for decisions.\n",
        scale.spec.count, scale.spec.days
    );

    let lineup = paper_lineup();
    let modes = [
        ("no backfilling", BackfillMode::None),
        ("aggressive (EASY)", BackfillMode::Aggressive),
        ("conservative", BackfillMode::Conservative),
    ];

    println!(
        "{:<6} {:>22} {:>22} {:>22}",
        "policy", "none: med / bf", "EASY: med / bf", "conservative: med / bf"
    );
    // One batched session across all three backfilling modes.
    let experiments: Vec<Experiment> = modes
        .iter()
        .map(|(_, mode)| {
            let mut scheduler = SchedulerConfig::user_estimates(Platform::new(nmax));
            scheduler.backfill = *mode;
            Experiment::new("ablation", sequences.clone(), scheduler)
        })
        .collect();
    let results = run_experiments(&experiments, &lineup);
    for (i, policy) in lineup.iter().enumerate() {
        use dynsched::policies::Policy as _;
        let cells: Vec<String> = results
            .iter()
            .map(|r| {
                let o = &r.outcomes[i];
                format!("{:>10.2} / {:>7.1}", o.median, o.mean_backfilled)
            })
            .collect();
        println!(
            "{:<6} {:>22} {:>22} {:>22}",
            policy.name(),
            cells[0],
            cells[1],
            cells[2]
        );
    }

    println!("\nReading guide: FCFS gains the most from backfilling (the EASY algorithm);");
    println!("the learned policies F1-F4 start from a much better order, so their gain is");
    println!("smaller — the paper's §4.2.3 observation. Conservative backfilling trades a");
    println!("little median performance for stronger no-delay guarantees.");
}
