//! Dynamic scheduling experiments on the workload model (§4.2; Figs. 4–6).
//!
//! Runs the paper's eight-policy line-up (FCFS, WFP, UNI, SPT, F4–F1) on
//! Lublin-model workloads at 256 and 1024 cores under all three
//! conditions — actual runtimes, user estimates, estimates + aggressive
//! backfilling — and prints artifact-style statistics plus boxplot numbers.
//!
//! Run with:
//!   cargo run --release --example compare_policies               # reduced scale
//!   DYNSCHED_FULL=1 cargo run --release --example compare_policies  # paper scale
//!                                                      (10 x 15-day sequences)

use dynsched::core::report::artifact_report;
use dynsched::core::scenarios::{model_scenario, Condition, ScenarioScale};
use dynsched::core::{run_experiments, ExperimentResult};
use dynsched::policies::paper_lineup;
use dynsched::workload::SequenceSpec;

fn scale() -> ScenarioScale {
    if std::env::var("DYNSCHED_FULL").is_ok() {
        ScenarioScale::default()
    } else {
        ScenarioScale {
            spec: SequenceSpec {
                count: 5,
                days: 4.0,
                min_jobs: 10,
            },
            ..ScenarioScale::default()
        }
    }
}

fn boxplot_block(result: &ExperimentResult) {
    println!("Boxplot data (q1 / median / q3 / whiskers / outliers):");
    for o in &result.outcomes {
        println!(
            "  {:>4}: {:>10.2} / {:>10.2} / {:>10.2} / [{:.2}, {:.2}] / {:?}",
            o.policy,
            o.summary.q1,
            o.summary.median,
            o.summary.q3,
            o.summary.whisker_lo,
            o.summary.whisker_hi,
            o.summary.outliers,
        );
    }
}

fn main() {
    let scale = scale();
    let lineup = paper_lineup();
    println!(
        "Protocol: {} sequences x {} days each (paper: 10 x 15). Set DYNSCHED_FULL=1 for paper scale.\n",
        scale.spec.count, scale.spec.days
    );

    // All six (condition × platform size) experiments run as one batched
    // evaluation session.
    let experiments: Vec<_> = Condition::ALL
        .into_iter()
        .flat_map(|condition| [256u32, 1024].map(|nmax| model_scenario(nmax, condition, &scale)))
        .collect();
    let t0 = std::time::Instant::now();
    let results = run_experiments(&experiments, &lineup);
    eprintln!(
        "{} experiments evaluated in {:.1} s (one batched session)\n",
        results.len(),
        t0.elapsed().as_secs_f64()
    );
    for (experiment, result) in experiments.iter().zip(&results) {
        let njobs: usize = experiment.sequences.iter().map(|s| s.len()).sum();
        println!("--- {} ({} jobs total) ---", experiment.name, njobs);
        print!("{}", artifact_report(result));
        boxplot_block(result);
        println!("best policy: {}\n", result.best_policy().unwrap_or("-"));
    }
}
