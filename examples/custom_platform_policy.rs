//! Per-platform custom policy training (the paper's §5 future-work
//! direction, implemented).
//!
//! Trains a policy from windows of one platform's *own* trace (here the
//! SDSC Blue stand-in), then compares it on held-out windows against the
//! paper's general F1/F2 and the ad-hoc baselines, including a SLURM-style
//! multifactor policy — the thing a platform maintainer would otherwise
//! hand-tune.
//!
//! Run with: `cargo run --release --example custom_platform_policy`

use dynsched::cluster::Platform;
use dynsched::core::custom::{learn_custom_policies, CustomTrainingConfig};
use dynsched::core::report::artifact_report;
use dynsched::core::trials::TrialSpec;
use dynsched::core::tuples::TupleSpec;
use dynsched::core::{run_experiment, Experiment};
use dynsched::mlreg::{fit_stats, EnumerateOptions};
use dynsched::policies::{Fcfs, LearnedPolicy, MultiFactor, Policy, Spt, Unicef, Wfp3};
use dynsched::scheduler::SchedulerConfig;
use dynsched::workload::{extract_sequences, ArchivePlatform, SequenceSpec};

fn main() {
    let platform = ArchivePlatform::SDSC_BLUE;
    println!(
        "Training a custom policy for {} ({} cores, target util {:.0}%).\n",
        platform.name, platform.cpus, platform.utilization_pct
    );

    // --- Split the platform's trace: first half trains, second evaluates.
    let full = platform.synthesize(40.0, 0xCC5);
    let mid = full.span() / 2.0;
    let train_trace = full.window(0.0, mid);
    let eval_trace = full.window(mid, f64::INFINITY).rebased(0.0);
    println!(
        "trace: {} jobs; training on the first {} / evaluating on the last {}.",
        full.len(),
        train_trace.len(),
        eval_trace.len()
    );

    // --- Train from the platform's own windows --------------------------
    let config = CustomTrainingConfig {
        tuple_spec: TupleSpec {
            s_size: 16,
            q_size: 32,
            max_start_offset: 0.0,
        },
        trial_spec: TrialSpec {
            trials: 4_000,
            platform: Platform::new(platform.cpus),
            tau: 10.0,
        },
        tuples: 12,
        seed: 0xCAFE,
    };
    let t0 = std::time::Instant::now();
    let report = learn_custom_policies(&train_trace, &config, &EnumerateOptions::default(), 2);
    println!(
        "learned from {} observations in {:.1} s; best fits:",
        report.training_set.len(),
        t0.elapsed().as_secs_f64()
    );
    for fit in report.fits.iter().take(3) {
        let stats = fit_stats(&fit.function, &report.training_set);
        println!(
            "  {}   (MAE {:.2e}, R^2 {:.3})",
            fit.function.render_simplified(),
            stats.mae,
            stats.r_squared
        );
    }

    // --- Evaluate on held-out windows ------------------------------------
    let spec = SequenceSpec {
        count: 5,
        days: 3.0,
        min_jobs: 10,
    };
    let sequences = extract_sequences(&eval_trace, &spec).expect("held-out windows");
    let mut lineup: Vec<Box<dyn Policy>> = vec![
        Box::new(Fcfs),
        Box::new(Wfp3),
        Box::new(Unicef),
        Box::new(Spt),
        Box::new(MultiFactor::default().for_platform(platform.cpus)),
        Box::new(LearnedPolicy::f2()),
        Box::new(LearnedPolicy::f1()),
    ];
    for p in report.policies {
        lineup.push(Box::new(p));
    }
    let experiment = Experiment::new(
        format!("{} held-out windows, actual runtimes", platform.name),
        sequences,
        SchedulerConfig::actual_runtimes(Platform::new(platform.cpus)),
    );
    let result = run_experiment(&experiment, &lineup);
    print!("\n{}", artifact_report(&result));
    println!(
        "\nreading: the custom G-policies should be competitive with (often better\n\
         than) the general F1/F2 on their own platform — the paper's conjecture —\n\
         and all learned policies should beat the hand-tuned multifactor baseline."
    );
}
