//! Five-minute tour of the dynsched API.
//!
//! 1. Generate a workload with the Lublin–Feitelson model.
//! 2. Schedule it under a classical policy and under the paper's learned
//!    policy F1, and compare average bounded slowdowns.
//! 3. Run a miniature version of the paper's training pipeline and print
//!    the best learned function.
//!
//! Run with: `cargo run --release --example quickstart`

use dynsched::cluster::{Platform, DEFAULT_TAU};
use dynsched::core::pipeline::{learn_policies, TrainingConfig};
use dynsched::core::trials::TrialSpec;
use dynsched::core::tuples::TupleSpec;
use dynsched::mlreg::EnumerateOptions;
use dynsched::policies::{Fcfs, LearnedPolicy, Policy, Spt};
use dynsched::scheduler::{simulate, QueueDiscipline, SchedulerConfig};
use dynsched::simkit::Rng;
use dynsched::workload::LublinModel;

fn main() {
    // --- 1. A bursty workload on a 256-core cluster --------------------
    let mut rng = Rng::new(2017);
    let model = LublinModel::new(256).calibrated_to_load(0.9, &mut rng);
    let trace = model.generate_jobs(600, &mut rng);
    let summary = trace.summary(256).expect("non-empty trace");
    println!(
        "Workload: {} jobs over {:.1} days, offered load {:.2}",
        summary.jobs,
        summary.span_seconds / 86_400.0,
        summary.offered_load
    );

    // --- 2. Schedule under FCFS, SPT and the paper's F1 ----------------
    let config = SchedulerConfig::actual_runtimes(Platform::new(256));
    let policies: Vec<Box<dyn Policy>> =
        vec![Box::new(Fcfs), Box::new(Spt), Box::new(LearnedPolicy::f1())];
    println!("\nAverage bounded slowdown (tau = {DEFAULT_TAU} s):");
    for policy in &policies {
        let result = simulate(&trace, &QueueDiscipline::Policy(policy.as_ref()), &config);
        println!(
            "  {:>4}: AVEbsld = {:>10.2}   (utilization {:.2}, makespan {:.1} h)",
            policy.name(),
            result.avg_bounded_slowdown(DEFAULT_TAU).unwrap(),
            result.utilization,
            result.makespan / 3_600.0,
        );
    }

    // --- 3. A miniature training run ------------------------------------
    // (The paper uses |S|=16, |Q|=32, 256k trials, many tuples; this is a
    // 30-second toy version — see examples/train_policies.rs for scale.)
    println!("\nTraining a policy from scratch (miniature pipeline)...");
    let config = TrainingConfig {
        tuple_spec: TupleSpec {
            s_size: 8,
            q_size: 16,
            max_start_offset: 100_000.0,
        },
        trial_spec: TrialSpec {
            trials: 2_000,
            platform: Platform::new(256),
            tau: DEFAULT_TAU,
        },
        tuples: 6,
        seed: 42,
    };
    let report = learn_policies(
        &config,
        &LublinModel::new(256),
        &EnumerateOptions::default(),
        4,
    );
    println!(
        "Pooled {} observations from {} tuples.",
        report.training_set.len(),
        report.tuples.len()
    );
    println!("Best fitted functions (Table-3 style):");
    for fit in report.fits.iter().take(4) {
        println!(
            "  {}   fitness = {:.3e}",
            fit.function.render_simplified(),
            fit.fitness
        );
    }
    println!("\nDone. Next steps: examples/train_policies.rs, examples/compare_policies.rs.");
}
