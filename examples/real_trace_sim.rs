//! Dynamic scheduling experiments on (stand-ins for) real traces
//! (§4.3; Figs. 7–9 and Table 5).
//!
//! By default this uses the synthetic stand-ins for the four Parallel
//! Workloads Archive platforms of Table 5 (Curie, ANL Intrepid, SDSC Blue,
//! CTC SP2) — see DESIGN.md for the substitution rationale. If you have a
//! real SWF log, pass it directly and the identical code path runs on it:
//!
//!   cargo run --release --example real_trace_sim                  # stand-ins
//!   DYNSCHED_FULL=1 cargo run --release --example real_trace_sim  # paper scale
//!   cargo run --release --example real_trace_sim -- CEA-Curie.swf 93312
//!                                                   # a real archive log

use dynsched::cluster::Platform;
use dynsched::core::report::artifact_report;
use dynsched::core::scenarios::{archive_scenario, Condition, ScenarioScale};
use dynsched::core::{run_experiments, Experiment};
use dynsched::policies::paper_lineup;
use dynsched::workload::{extract_sequences, parse_swf_trace, ArchivePlatform, SequenceSpec};

fn scale() -> ScenarioScale {
    if std::env::var("DYNSCHED_FULL").is_ok() {
        ScenarioScale::default()
    } else {
        ScenarioScale {
            spec: SequenceSpec {
                count: 4,
                days: 3.0,
                min_jobs: 10,
            },
            ..ScenarioScale::default()
        }
    }
}

fn run_on_swf(path: &str, cores: u32, scale: &ScenarioScale) {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read SWF file {path}: {e}"));
    let trace = parse_swf_trace(&text)
        .unwrap_or_else(|e| panic!("cannot parse {path}: {e}"))
        .capped_to(cores);
    println!("Loaded {} usable jobs from {path}.", trace.len());
    let sequences = extract_sequences(&trace, &scale.spec)
        .unwrap_or_else(|e| panic!("cannot extract sequences: {e}"));
    let lineup = paper_lineup();
    // All three conditions in one batched session.
    let experiments: Vec<Experiment> = Condition::ALL
        .into_iter()
        .map(|condition| {
            Experiment::new(
                format!("{path}, {}", condition.label()),
                sequences.clone(),
                condition.scheduler(Platform::new(cores)),
            )
        })
        .collect();
    for result in run_experiments(&experiments, &lineup) {
        print!("{}", artifact_report(&result));
        println!();
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = scale();

    if let (Some(path), Some(cores)) = (args.first(), args.get(1)) {
        let cores: u32 = cores
            .parse()
            .expect("second argument must be the platform core count");
        run_on_swf(path, cores, &scale);
        return;
    }

    // Table 5.
    println!("Platforms (paper Table 5):");
    println!(
        "{:<13} {:>5} {:>8} {:>8} {:>7} {:>9}",
        "Name", "Year", "#CPUs", "#Jobs", "Util%", "Duration"
    );
    for p in &ArchivePlatform::ALL {
        println!(
            "{:<13} {:>5} {:>8} {:>8} {:>7.1} {:>6} mo",
            p.name, p.year, p.cpus, p.jobs, p.utilization_pct, p.duration_months
        );
    }
    println!(
        "\nProtocol: {} sequences x {} days (paper: 10 x 15). Stand-ins are synthetic; pass\na real SWF path + core count to run on an archive log.\n",
        scale.spec.count, scale.spec.days
    );

    let lineup = paper_lineup();
    // Every (condition × platform) experiment runs in one batched session.
    let experiments: Vec<Experiment> = Condition::ALL
        .into_iter()
        .flat_map(|condition| {
            ArchivePlatform::ALL
                .iter()
                .map(move |platform| archive_scenario(platform, condition, &scale))
        })
        .collect();
    let t0 = std::time::Instant::now();
    let results = run_experiments(&experiments, &lineup);
    eprintln!(
        "{} experiments evaluated in {:.1} s (one batched session)\n",
        results.len(),
        t0.elapsed().as_secs_f64()
    );
    let per_condition = ArchivePlatform::ALL.len();
    for (i, (condition, chunk)) in Condition::ALL
        .iter()
        .zip(results.chunks(per_condition))
        .enumerate()
    {
        println!("==== Condition: {} ====", condition.label());
        for (experiment, result) in experiments[i * per_condition..].iter().zip(chunk) {
            let njobs: usize = experiment.sequences.iter().map(|s| s.len()).sum();
            print!("{}", artifact_report(result));
            println!(
                "jobs={njobs} best={}\n",
                result.best_policy().unwrap_or("-")
            );
        }
    }
}
