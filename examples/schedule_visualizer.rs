//! Visualize schedules: ASCII Gantt charts, utilization and queue-length
//! curves, and SWF export — side by side for FCFS vs F1 vs EASY.
//!
//! Run with: `cargo run --release --example schedule_visualizer`

use dynsched::cluster::{Platform, DEFAULT_TAU};
use dynsched::policies::{Fcfs, LearnedPolicy, Policy};
use dynsched::scheduler::timeline::{curve_max, curve_mean, queue_length_curve, utilization_curve};
use dynsched::scheduler::{
    ascii_gantt, simulate, write_schedule_swf, QueueDiscipline, SchedulerConfig,
};
use dynsched::simkit::Rng;
use dynsched::workload::LublinModel;

fn main() {
    let platform = Platform::new(32);
    let mut model = LublinModel::new(32);
    model.arrival_scale = 0.02; // a saturated burst so the policies differ
    model.daily_cycle = false;
    let mut rng = Rng::new(2026);
    let trace = model.generate_jobs(28, &mut rng);
    println!(
        "Workload: {} jobs on {} cores (offered load {:.1}).\n",
        trace.len(),
        platform.total_cores,
        trace.summary(32).unwrap().offered_load
    );

    let configs: Vec<(String, SchedulerConfig, Box<dyn Policy>)> = vec![
        (
            "FCFS, no backfilling".into(),
            SchedulerConfig::actual_runtimes(platform),
            Box::new(Fcfs),
        ),
        (
            "F1, no backfilling".into(),
            SchedulerConfig::actual_runtimes(platform),
            Box::new(LearnedPolicy::f1()),
        ),
        (
            "FCFS + EASY (the EASY algorithm)".into(),
            SchedulerConfig::estimates_with_backfilling(platform),
            Box::new(Fcfs),
        ),
    ];

    for (label, config, policy) in &configs {
        let result = simulate(&trace, &QueueDiscipline::Policy(policy.as_ref()), config);
        println!("== {label} ==");
        println!("(id x cores; '.' waiting, '#' running; time left to right)");
        print!("{}", ascii_gantt(&result, 72));
        let util = utilization_curve(&result, platform);
        let queue = queue_length_curve(&result);
        println!(
            "AVEbsld {:.2} | makespan {:.1} h | mean util {:.2} | peak queue {} | backfilled {}\n",
            result.avg_bounded_slowdown(DEFAULT_TAU).unwrap(),
            result.makespan / 3_600.0,
            curve_mean(&util).unwrap_or(0.0),
            curve_max(&queue) as u64,
            result.backfilled_jobs,
        );
    }

    // Export the F1 schedule as SWF for external tooling.
    let result = simulate(
        &trace,
        &QueueDiscipline::Policy(&LearnedPolicy::f1()),
        &SchedulerConfig::actual_runtimes(platform),
    );
    let out = std::path::Path::new("target/figures");
    std::fs::create_dir_all(out).expect("create target/figures");
    let path = out.join("f1_schedule.swf");
    std::fs::write(&path, write_schedule_swf(&result, "F1 on 32 cores", 32)).expect("write swf");
    println!(
        "F1 schedule exported to {} (SWF with simulated wait times).",
        path.display()
    );
}
