//! Regenerate the paper's Table 4: median average bounded slowdowns for
//! all 18 experiments × 8 policies, side by side with the published
//! numbers.
//!
//! Run with:
//!   cargo run --release --example table4_reproduction              # reduced scale
//!   DYNSCHED_FULL=1 cargo run --release --example table4_reproduction
//!                                             # the paper's 10 x 15-day protocol
//!
//! Absolute values depend on the workload calibration (see DESIGN.md);
//! the comparison to check is the *shape*: F1–F4 ≪ ad-hoc policies, the
//! ordering among F's, and the compression of the gap under backfilling.

use dynsched::core::report::{table4_comparison, table4_markdown};
use dynsched::core::scenarios::{table4_experiments, ScenarioScale};
use dynsched::core::{learned_beat_adhoc, run_experiments};
use dynsched::policies::paper_lineup;
use dynsched::workload::SequenceSpec;

fn main() {
    let scale = if std::env::var("DYNSCHED_FULL").is_ok() {
        ScenarioScale::default()
    } else {
        ScenarioScale {
            spec: SequenceSpec {
                count: 3,
                days: 2.0,
                min_jobs: 5,
            },
            ..ScenarioScale::default()
        }
    };
    println!(
        "Protocol: {} sequences x {} days (paper: 10 x 15).\n",
        scale.spec.count, scale.spec.days
    );

    let lineup = paper_lineup();
    let experiments = table4_experiments(&scale);
    // All 18 rows × 8 policies × sequences run as ONE batched evaluation
    // session — a single fan-out with reusable per-worker workspaces.
    let t0 = std::time::Instant::now();
    let results = run_experiments(&experiments, &lineup);
    eprintln!(
        "18 rows evaluated in {:.1} s (one batched session)",
        t0.elapsed().as_secs_f64()
    );
    for (i, result) in results.iter().enumerate() {
        eprintln!(
            "[{:>2}/18] {}  (best {})",
            i + 1,
            result.name,
            result.best_policy().unwrap_or("-")
        );
    }

    println!("\n== Measured medians (Table 4 layout) ==\n");
    print!("{}", table4_markdown(&results));

    println!("\n== Paper vs measured ==\n");
    print!("{}", table4_comparison(&results));

    let wins = results.iter().filter(|r| learned_beat_adhoc(r)).count();
    println!(
        "\nShape check: best learned policy beats best ad-hoc policy in {wins}/18 experiments \
         (paper: 18/18 on medians)."
    );
}
