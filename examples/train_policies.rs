//! The paper's training workflow, end to end (artifact workflows 1 + 2).
//!
//! Generates `(S, Q)` tuples from the Lublin model, runs permutation trials
//! to build trial score distributions (printing one, as in Fig. 1), pools
//! the `score(r, n, s)` observations (the artifact's
//! `score-distribution.csv`), fits the 576-member function family with
//! weighted Levenberg–Marquardt, and prints the ranked winners in both the
//! artifact's verbose format and the paper's simplified Table 3 style.
//!
//! Run with:
//!   cargo run --release --example train_policies            # moderate scale
//!   DYNSCHED_TUPLES=32 DYNSCHED_TRIALS=32000 \
//!   cargo run --release --example train_policies            # closer to paper scale
//!
//! The paper itself used |S|=16, |Q|=32, 256k trials per tuple on a
//! 256-core platform, pooling tuples generated over days of compute.

use dynsched::cluster::{Platform, DEFAULT_TAU};
use dynsched::core::pipeline::{learn_policies, TrainingConfig};
use dynsched::core::trials::{trial_scores, TrialSpec};
use dynsched::core::tuples::{TaskTuple, TupleSpec};
use dynsched::mlreg::EnumerateOptions;
use dynsched::simkit::Rng;
use dynsched::workload::LublinModel;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let tuples = env_usize("DYNSCHED_TUPLES", 12);
    let trials = env_usize("DYNSCHED_TRIALS", 8_000);
    let seed = env_usize("DYNSCHED_SEED", 0x5C17) as u64;

    let platform = Platform::new(256);
    let model = LublinModel::new(256);
    let tuple_spec = TupleSpec::default(); // |S| = 16, |Q| = 32
    let trial_spec = TrialSpec {
        trials,
        platform,
        tau: DEFAULT_TAU,
    };

    // --- Fig. 1: one trial score distribution ---------------------------
    println!("== Trial score distribution (Fig. 1 analogue) ==");
    println!("one tuple (|S| = 16, |Q| = 32), {trials} trials, 256 cores");
    let mut rng = Rng::new(seed);
    let example_tuple = TaskTuple::generate(&tuple_spec, &model, &mut rng);
    let scores = trial_scores(&example_tuple, &trial_spec, &Rng::new(seed ^ 0xF16));
    println!(
        "task-id  runtime(s)  cores  submit(s)    score   (mean = {:.4})",
        1.0 / 32.0
    );
    for (k, (job, score)) in example_tuple.q_tasks.iter().zip(&scores.scores).enumerate() {
        println!(
            "{:>7}  {:>10.1}  {:>5}  {:>9.1}  {:.5} {}",
            k,
            job.runtime,
            job.cores,
            job.submit,
            score,
            if *score < 1.0 / 32.0 {
                "  <- favourable first choice"
            } else {
                ""
            }
        );
    }

    // --- Workflows 1+2: pooled distribution + regression ----------------
    println!("\n== Training: {tuples} tuples x {trials} trials ==");
    let config = TrainingConfig {
        tuple_spec,
        trial_spec,
        tuples,
        seed,
    };
    let t0 = std::time::Instant::now();
    let report = learn_policies(&config, &model, &EnumerateOptions::default(), 4);
    println!(
        "pooled {} observations in {:.1} s; fitted 576 candidate functions",
        report.training_set.len(),
        t0.elapsed().as_secs_f64()
    );

    // Artifact A.5.1-style sample of the pooled distribution.
    println!("\nscore-distribution.csv (first 5 lines):");
    for line in report.training_set.to_csv().lines().take(5) {
        println!("{line}");
    }

    // Artifact A.5.2-style enumeration output.
    println!("\n== Ranked nonlinear functions (best 8 of 576) ==");
    for fit in report.fits.iter().take(8) {
        println!("{},", fit.function.render_verbose());
        println!("    fitness={:.7}", fit.fitness);
    }

    println!("\n== Table 3 analogue (simplified form) ==");
    for (i, fit) in report.fits.iter().take(4).enumerate() {
        println!("G{}  {}", i + 1, fit.function.render_simplified());
    }

    // Coefficient diagnostics for the winners (identifiability + stderr).
    println!("\n== Selection diagnostics ==");
    print!(
        "{}",
        dynsched::mlreg::selection_report(&report.fits, &report.training_set, 4)
    );

    // Export the learned policies as a loadable policy file.
    let out_dir = std::path::Path::new("target/figures");
    std::fs::create_dir_all(out_dir).expect("create target/figures");
    let path = out_dir.join("learned_policies.txt");
    std::fs::write(&path, dynsched::policies::save_learned(&report.policies))
        .expect("write policy file");
    println!(
        "\nlearned policies saved to {} (reload with dynsched::policies::load_policies)",
        path.display()
    );
    println!("\nPaper's Table 3 for reference:");
    println!("F1  log10(r)*n + 8.70e2*log10(s)");
    println!("F2  sqrt(r)*n + 2.56e4*log10(s)");
    println!("F3  r*n + 6.86e6*log10(s)");
    println!("F4  r*sqrt(n) + 5.30e5*log10(s)");
}
