//! `dynsched` — command-line front end for the library.
//!
//! ```text
//! dynsched validate <trace.swf> [cores]        audit an SWF trace
//! dynsched simulate <trace.swf> <cores> [opts] schedule a trace, print stats
//! dynsched federate <trace.swf> <cores> [opts] schedule across N federated clusters
//! dynsched train [opts]                        learn policies from the Lublin model
//! dynsched run [opts]                          one-shot learn → evaluate (the whole paper loop),
//!                                              crash-safe with --checkpoint-dir/--resume
//! dynsched table4 [--full]                     regenerate the paper's Table 4
//! dynsched scenarios [opts]                    list/evaluate the workload scenario registry
//! dynsched policies                            list built-in policies
//! ```
//!
//! Everything here is a thin shell over the library crates; see
//! `examples/` for programmatic use.

use dynsched::cluster::{FaultProfile, Platform, DEFAULT_TAU};
use dynsched::core::pipeline::{learn_policies, run_full, FullRunConfig, TrainingConfig};
use dynsched::core::report::{full_run_markdown, table4_comparison, table4_markdown};
use dynsched::core::scenarios::{scenario_results, table4_experiments, ScenarioScale};
use dynsched::core::trials::TrialSpec;
use dynsched::core::tuples::TupleSpec;
use dynsched::core::{learned_beat_adhoc, run_experiments, run_full_checkpointed, RunError};
use dynsched::mlreg::EnumerateOptions;
use dynsched::policies::{by_name, paper_lineup, save_learned, CompiledPolicy, Policy};
use dynsched::scheduler::{
    run_federation, run_federation_faulty, simulate, BackfillMode, FederationSpec, QueueDiscipline,
    Router, SchedulerConfig,
};
use dynsched::simkit::durable::write_atomic;
use dynsched::workload::{
    read_swf_file, validate_trace, LublinModel, ScenarioParams, ScenarioRegistry, SequenceSpec,
    TraceStore,
};
use std::process::ExitCode;

const USAGE: &str = "\
dynsched — dynamic HPC scheduling policies from simulation + ML (SC'17 reproduction)

USAGE:
  dynsched validate <trace.swf> [cores]
      Audit a Standard Workload Format trace (cores defaults to the
      header's MaxProcs).

  dynsched simulate <trace.swf> <cores> [--policy NAME] [--estimates]
                    [--backfill none|easy|conservative] [--kill]
      Schedule the trace and print artifact-style statistics.
      NAME: FCFS, WFP, UNI, SPT, F1..F4, MF, LCFS, LPT, SAF, LAF (default F1).

  dynsched federate <trace.swf> <cores-per-cluster> [--shards N]
                    [--router round-robin|least-loaded|locality|learned]
                    [--spill SECS] [--router-policy NAME]
                    [--policy NAME] [--estimates]
                    [--backfill none|easy|conservative] [--kill]
                    [--mtbf SECS [--mttr SECS] [--fault-cores N]
                     [--fault-retries N] [--fault-seed N]]
      Route the trace across N identical clusters (default 4) and
      schedule every shard concurrently, printing per-cluster and merged
      global statistics. --router picks the cross-cluster routing policy
      (default least-loaded); locality keeps each job on its home
      cluster (id mod N) unless its estimated wait exceeds the best
      cluster's by more than --spill seconds (default 0); learned scores
      every cluster with the compiled form of --router-policy (default:
      the queue policy) and routes to the lowest score. Queue scheduling
      inside each cluster uses --policy (default F1) with the same
      --estimates/--backfill/--kill knobs as `simulate`. With --mtbf,
      each cluster draws its own deterministic fault stream from
      (fault seed, shard index). Shard schedules are bit-identical at
      any worker-thread count, and a 1-shard federation is bit-identical
      to `simulate`.

  dynsched train [--tuples N] [--trials N] [--cores N] [--seed N] [--out FILE]
      Run the training pipeline (Lublin model) and print/export the best
      learned policies. Permutation trials run on the checkpoint-and-fork
      engine: each distinct (S, Q) tuple is simulated once up to the
      point where task order can first matter, and all trials fork from
      that shared snapshot (bit-identical to from-scratch trials at any
      thread count).

  dynsched run [--tuples N] [--trials N] [--cores N] [--seed N] [--top K]
               [--quick] [--out FILE] [--checkpoint-dir DIR [--resume]]
      One-shot run of the whole paper loop: train on the Lublin model,
      fit and rank all 576 candidate functions, keep the top K as
      policies G1..GK, and evaluate them against the ad-hoc baselines
      across the full Table-4 scenario grid. Prints a single markdown
      report (--out also writes it to FILE, atomically; --quick shrinks
      the evaluation protocol). With --checkpoint-dir, a validated state
      file is persisted (atomic write + fsync) after each durable stage
      — the pooled training set, the ranked fits, then each Table-4 row
      as it completes — and --resume picks the run back up after a crash,
      recomputing any partial or corrupt stage and producing a report
      bit-identical to an uninterrupted run. Resuming with a different
      config, seed, or model is a loud error, never a silent mix.

  dynsched table4 [--quick]
      Regenerate the paper's Table 4 (all 18 experiments; --quick shrinks
      the protocol).

  dynsched scenarios [--cores N] [--days N] [--load X] [--seed N]
                     [--eval [--family NAME]]
                     [--mtbf SECS [--mttr SECS] [--fault-cores N]
                      [--fault-retries N] [--fault-seed N]]
      List the workload scenario registry with per-family calibration
      summaries (jobs/day, offered load, runtime CV) at the given
      parameter point. With --eval, run a quick evaluation of the named
      family (or every family) under all three conditions and the paper's
      policy line-up. With --mtbf, the evaluation runs under deterministic
      fault injection: --fault-cores nodes (default cores/8) fail with
      the given mean time between failures, repair after --mttr seconds
      (default 3600), and preempted jobs requeue up to --fault-retries
      times (default 3); resilience counters (preemptions, abandoned
      jobs, lost core-seconds) print per row.

  dynsched policies
      List built-in policies.
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprint!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let rest = &args[1..];
    let result = match command.as_str() {
        "validate" => cmd_validate(rest),
        "simulate" => cmd_simulate(rest),
        "federate" => cmd_federate(rest),
        "train" => cmd_train(rest),
        "run" => cmd_run(rest),
        "table4" => cmd_table4(rest),
        "scenarios" => cmd_scenarios(rest),
        "policies" => cmd_policies(rest),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}; try `dynsched help`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

/// Look up the value of `name`. A present flag with a missing value, or
/// with a value that is itself a flag, is an error — `--policy --kill`
/// used to swallow `"--kill"` as the policy name and `--tuples` at the
/// end of the line silently fell back to the default.
fn flag_value<'a>(args: &'a [String], name: &str) -> Result<Option<&'a str>, String> {
    let Some(i) = args.iter().position(|a| a == name) else {
        return Ok(None);
    };
    match args.get(i + 1).map(String::as_str) {
        None => Err(format!("{name} needs a value")),
        Some(v) if v.starts_with("--") => Err(format!(
            "{name} needs a value, but the next argument is the flag {v:?}"
        )),
        Some(v) => Ok(Some(v)),
    }
}

fn has_flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

/// Validate the argument list against a subcommand's flag allowlist.
///
/// `value_flags` consume the token after them; `bool_flags` stand alone;
/// anything else that starts with `--` — a typo like `--tirals`, an
/// unknown option — is an error naming the offender, and more than
/// `max_positionals` bare arguments is too. Before this check, `train
/// --tirals 500` silently ran with the default trial count.
fn reject_unknown(
    args: &[String],
    max_positionals: usize,
    value_flags: &[&str],
    bool_flags: &[&str],
) -> Result<(), String> {
    let mut positionals = 0usize;
    let mut i = 0;
    while i < args.len() {
        let arg = args[i].as_str();
        if value_flags.contains(&arg) {
            // The value itself is validated by flag_value; just skip it
            // here so a policy named "--kill" is not double-counted.
            i += 2;
        } else if bool_flags.contains(&arg) {
            i += 1;
        } else if arg.starts_with("--") {
            let known: Vec<&str> = value_flags.iter().chain(bool_flags).copied().collect();
            return Err(if known.is_empty() {
                format!("unknown flag {arg:?} (this subcommand takes no flags)")
            } else {
                format!("unknown flag {arg:?} (known flags: {})", known.join(", "))
            });
        } else {
            positionals += 1;
            if positionals > max_positionals {
                return Err(format!(
                    "unexpected argument {arg:?} (at most {max_positionals} positional argument(s))"
                ));
            }
            i += 1;
        }
    }
    Ok(())
}

/// Render an optional per-job statistic: the value at `prec` decimal
/// places, or a uniform `n/a` when nothing completed.
fn stat_or_na(v: Option<f64>, prec: usize) -> String {
    v.map_or_else(|| "n/a".to_string(), |x| format!("{x:.prec$}"))
}

fn usize_flag(args: &[String], name: &str, default: usize) -> Result<usize, String> {
    flag_value(args, name)?
        .map(|v| v.parse().map_err(|e| format!("bad {name}: {e}")))
        .transpose()
        .map(|v| v.unwrap_or(default))
}

/// Parse `name` as `u64` directly — seeds must not round-trip through
/// `usize` (lossy on 32-bit targets, rejects values above `usize::MAX`).
fn u64_flag(args: &[String], name: &str, default: u64) -> Result<u64, String> {
    flag_value(args, name)?
        .map(|v| v.parse().map_err(|e| format!("bad {name}: {e}")))
        .transpose()
        .map(|v| v.unwrap_or(default))
}

/// Parse `name` as `f64` directly — fractional values like `--days 2.5`
/// are legitimate wherever the underlying parameter is `f64`.
fn f64_flag(args: &[String], name: &str, default: f64) -> Result<f64, String> {
    flag_value(args, name)?
        .map(|v| v.parse().map_err(|e| format!("bad {name}: {e}")))
        .transpose()
        .map(|v| v.unwrap_or(default))
}

/// The training knobs `train` and `run` share: `(tuples, trials, cores,
/// seed)` with common defaults.
fn training_flags(args: &[String]) -> Result<(usize, usize, u32, u64), String> {
    Ok((
        usize_flag(args, "--tuples", 12)?,
        usize_flag(args, "--trials", 8_000)?,
        usize_flag(args, "--cores", 256)? as u32,
        u64_flag(args, "--seed", 0x5C17)?,
    ))
}

/// The deterministic fault-injection knobs `scenarios` and `federate`
/// share: `--mtbf` turns injection on, the rest refine it.
fn fault_flags(
    args: &[String],
    cores: u32,
    default_seed: u64,
) -> Result<Option<FaultProfile>, String> {
    let Some(v) = flag_value(args, "--mtbf")? else {
        return Ok(None);
    };
    let mtbf: f64 = v.parse().map_err(|e| format!("bad --mtbf: {e}"))?;
    let mttr = f64_flag(args, "--mttr", 3_600.0)?;
    let fault_cores = usize_flag(args, "--fault-cores", (cores / 8).max(1) as usize)? as u32;
    let retries = usize_flag(args, "--fault-retries", 3)? as u32;
    let fault_seed = u64_flag(args, "--fault-seed", default_seed)?;
    Ok(Some(
        FaultProfile::failures(mtbf, mttr, fault_cores, fault_seed).with_max_retries(retries),
    ))
}

fn load_swf(
    path: &str,
) -> Result<(dynsched::workload::SwfHeader, dynsched::workload::Trace), String> {
    // Streams line-by-line through a BufReader: archive logs never need to
    // fit in memory as one string.
    read_swf_file(path).map_err(|e| format!("cannot read {path}: {e}"))
}

fn cmd_validate(args: &[String]) -> Result<(), String> {
    reject_unknown(args, 2, &[], &[])?;
    let path = args.first().ok_or("validate needs a trace path")?;
    let (header, trace) = load_swf(path)?;
    let cores = args
        .get(1)
        .map(|c| c.parse::<u32>().map_err(|e| format!("bad core count: {e}")))
        .transpose()?
        .or(header.max_procs)
        .ok_or("no core count given and the header has no MaxProcs")?;
    if let Some(computer) = &header.computer {
        println!("Computer: {computer}");
    }
    println!("Platform: {cores} cores");
    let report = validate_trace(&trace, cores);
    print!("{}", report.render());
    if report.is_usable() {
        Ok(())
    } else {
        Err("trace is not usable as-is (see ERROR findings)".to_string())
    }
}

fn cmd_simulate(args: &[String]) -> Result<(), String> {
    reject_unknown(
        args,
        2,
        &["--policy", "--backfill"],
        &["--estimates", "--kill"],
    )?;
    let path = args.first().ok_or("simulate needs a trace path")?;
    let cores: u32 = args
        .get(1)
        .ok_or("simulate needs a core count")?
        .parse()
        .map_err(|e| format!("bad core count: {e}"))?;
    let policy_name = flag_value(args, "--policy")?.unwrap_or("F1");
    let policy = by_name(policy_name).ok_or_else(|| format!("unknown policy {policy_name:?}"))?;

    let mut config = if has_flag(args, "--estimates") {
        SchedulerConfig::user_estimates(Platform::new(cores))
    } else {
        SchedulerConfig::actual_runtimes(Platform::new(cores))
    };
    config.backfill = match flag_value(args, "--backfill")?.unwrap_or("none") {
        "none" => BackfillMode::None,
        "easy" | "aggressive" => BackfillMode::Aggressive,
        "conservative" => BackfillMode::Conservative,
        other => return Err(format!("unknown backfill mode {other:?}")),
    };
    config.kill_at_estimate = has_flag(args, "--kill");

    let (_, trace) = load_swf(path)?;
    let trace = trace.capped_to(cores);
    if trace.is_empty() {
        return Err("no usable jobs after capping to the platform width".to_string());
    }
    println!(
        "Scheduling {} jobs on {cores} cores under {}...",
        trace.len(),
        policy.name()
    );
    let t0 = std::time::Instant::now();
    let result = simulate(&trace, &QueueDiscipline::Policy(policy.as_ref()), &config);
    // Empty results print "n/a" for both per-job statistics: the old mix
    // (NaN for AVEbsld, 0.0 for mean wait) made an empty run read as a
    // measured zero-wait schedule.
    println!(
        "AVEbsld = {} | mean wait = {} s | utilization = {:.3} | makespan = {:.2} days | backfilled = {} | [{:.1} s]",
        stat_or_na(result.avg_bounded_slowdown(DEFAULT_TAU), 2),
        stat_or_na(result.mean_wait(), 1),
        result.utilization,
        result.makespan / 86_400.0,
        result.backfilled_jobs,
        t0.elapsed().as_secs_f64(),
    );
    Ok(())
}

/// The owned form of a `--router` choice. `Router` borrows the learned
/// router's compiled bytecode, so the bytecode must live somewhere the
/// borrow can point into; owning it *inside* the variant makes the
/// "learned router has a compiled policy" invariant a type-level fact
/// instead of an `Option` that the match had to `expect` away.
enum RouterSpec {
    RoundRobin,
    LeastLoaded,
    Locality { spill: f64 },
    Learned(CompiledPolicy),
}

impl RouterSpec {
    /// Parse the `--router`/`--spill`/`--router-policy` flags into an
    /// owned spec (compiling the router policy when needed).
    fn parse(router_name: &str, args: &[String], policy_name: &str) -> Result<Self, String> {
        match router_name {
            "round-robin" => Ok(Self::RoundRobin),
            "least-loaded" => Ok(Self::LeastLoaded),
            "locality" => Ok(Self::Locality {
                spill: f64_flag(args, "--spill", 0.0)?,
            }),
            "learned" => {
                let name = flag_value(args, "--router-policy")?.unwrap_or(policy_name);
                let p = by_name(name).ok_or_else(|| format!("unknown router policy {name:?}"))?;
                let compiled = p
                    .compile()
                    .ok_or_else(|| format!("policy {name:?} has no compiled form to route with"))?;
                Ok(Self::Learned(compiled))
            }
            other => Err(format!("unknown router {other:?}")),
        }
    }

    /// Borrow as the scheduler's `Router`, valid as long as `self` lives.
    fn as_router(&self) -> Router<'_> {
        match self {
            Self::RoundRobin => Router::RoundRobin,
            Self::LeastLoaded => Router::LeastLoaded,
            Self::Locality { spill } => Router::LocalityAware { spill: *spill },
            Self::Learned(compiled) => Router::Learned(compiled),
        }
    }
}

fn cmd_federate(args: &[String]) -> Result<(), String> {
    reject_unknown(
        args,
        2,
        &[
            "--shards",
            "--router",
            "--spill",
            "--router-policy",
            "--policy",
            "--backfill",
            "--mtbf",
            "--mttr",
            "--fault-cores",
            "--fault-retries",
            "--fault-seed",
        ],
        &["--estimates", "--kill"],
    )?;
    let path = args.first().ok_or("federate needs a trace path")?;
    let cores: u32 = args
        .get(1)
        .ok_or("federate needs a per-cluster core count")?
        .parse()
        .map_err(|e| format!("bad core count: {e}"))?;
    let shards = usize_flag(args, "--shards", 4)?;
    if shards == 0 {
        return Err("a federation needs at least one shard".to_string());
    }

    let policy_name = flag_value(args, "--policy")?.unwrap_or("F1");
    let policy = by_name(policy_name).ok_or_else(|| format!("unknown policy {policy_name:?}"))?;

    let mut config = if has_flag(args, "--estimates") {
        SchedulerConfig::user_estimates(Platform::new(cores))
    } else {
        SchedulerConfig::actual_runtimes(Platform::new(cores))
    };
    config.backfill = match flag_value(args, "--backfill")?.unwrap_or("none") {
        "none" => BackfillMode::None,
        "easy" | "aggressive" => BackfillMode::Aggressive,
        "conservative" => BackfillMode::Conservative,
        other => return Err(format!("unknown backfill mode {other:?}")),
    };
    config.kill_at_estimate = has_flag(args, "--kill");

    let router_name = flag_value(args, "--router")?.unwrap_or("least-loaded");
    let router_spec = RouterSpec::parse(router_name, args, policy_name)?;
    let router = router_spec.as_router();
    let fault = fault_flags(args, cores, 0x5C17)?;

    let (_, trace) = load_swf(path)?;
    let trace = trace.capped_to(cores);
    if trace.is_empty() {
        return Err("no usable jobs after capping to the per-cluster width".to_string());
    }
    println!(
        "Federating {} jobs across {shards} x {cores}-core clusters ({router_name} routing, {} queues)...",
        trace.len(),
        policy.name()
    );

    let spec = FederationSpec::uniform(shards, config, router);
    let compiled = policy.compile();
    let discipline = match &compiled {
        Some(cp) => QueueDiscipline::Compiled(cp),
        None => QueueDiscipline::Policy(policy.as_ref()),
    };
    let t0 = std::time::Instant::now();
    let result = match &fault {
        Some(profile) => run_federation_faulty(&trace, &spec, &discipline, profile),
        None => run_federation(&trace, &spec, &discipline),
    }
    .map_err(|e| format!("federated simulation failed: {e}"))?;
    let elapsed = t0.elapsed().as_secs_f64();

    println!(
        "  {:<8} {:>8} {:>10} {:>12} {:>10} {:>12}",
        "cluster", "jobs", "AVEbsld", "mean wait", "util", "makespan(d)"
    );
    for (s, shard) in result.shards.iter().enumerate() {
        println!(
            "  {:<8} {:>8} {:>10} {:>12} {:>10.3} {:>12.2}",
            s,
            shard.completed.len(),
            stat_or_na(shard.avg_bounded_slowdown(DEFAULT_TAU), 2),
            stat_or_na(shard.mean_wait(), 1),
            shard.utilization,
            shard.makespan / 86_400.0,
        );
    }
    println!(
        "global: AVEbsld = {} | mean wait = {} s | makespan = {:.2} days | backfilled = {} | [{elapsed:.1} s]",
        stat_or_na(result.avg_bounded_slowdown(DEFAULT_TAU), 2),
        stat_or_na(result.mean_wait(), 1),
        result.makespan() / 86_400.0,
        result.backfilled_jobs(),
    );
    if fault.is_some() {
        println!(
            "resilience: preempted = {} | abandoned = {} | lost core-seconds = {:.0}",
            result.preempted_jobs(),
            result.abandoned_jobs(),
            result.lost_core_seconds(),
        );
    }
    Ok(())
}

fn cmd_train(args: &[String]) -> Result<(), String> {
    reject_unknown(
        args,
        0,
        &["--tuples", "--trials", "--cores", "--seed", "--out"],
        &[],
    )?;
    let (tuples, trials, cores, seed) = training_flags(args)?;

    let config = TrainingConfig {
        tuple_spec: TupleSpec::default(),
        trial_spec: TrialSpec {
            trials,
            platform: Platform::new(cores),
            tau: DEFAULT_TAU,
        },
        tuples,
        seed,
    };
    println!("Training: {tuples} tuples x {trials} trials on {cores} cores (seed {seed})...");
    let t0 = std::time::Instant::now();
    let report = learn_policies(
        &config,
        &LublinModel::new(cores),
        &EnumerateOptions::default(),
        4,
    );
    println!(
        "{} observations, 576 fits in {:.1} s. Best functions:",
        report.training_set.len(),
        t0.elapsed().as_secs_f64()
    );
    for (i, fit) in report.fits.iter().take(4).enumerate() {
        println!(
            "  G{}: {}   (fitness {:.3e})",
            i + 1,
            fit.function.render_simplified(),
            fit.fitness
        );
    }
    if let Some(out) = flag_value(args, "--out")? {
        write_atomic(out, save_learned(&report.policies))
            .map_err(|e| format!("cannot write {out}: {e}"))?;
        println!("policy file written to {out}");
    }
    Ok(())
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    reject_unknown(
        args,
        0,
        &[
            "--tuples",
            "--trials",
            "--cores",
            "--seed",
            "--top",
            "--out",
            "--checkpoint-dir",
        ],
        &["--quick", "--resume"],
    )?;
    let (tuples, trials, cores, seed) = training_flags(args)?;
    let top_k = usize_flag(args, "--top", 4)?;
    let checkpoint_dir = flag_value(args, "--checkpoint-dir")?;
    let resume = has_flag(args, "--resume");
    if resume && checkpoint_dir.is_none() {
        return Err("--resume needs --checkpoint-dir DIR to resume from".to_string());
    }

    let config = FullRunConfig {
        training: TrainingConfig {
            tuple_spec: TupleSpec::default(),
            trial_spec: TrialSpec {
                trials,
                platform: Platform::new(cores),
                tau: DEFAULT_TAU,
            },
            tuples,
            seed,
        },
        enumerate: EnumerateOptions::default(),
        top_k,
        eval_scale: if has_flag(args, "--quick") {
            ScenarioScale {
                spec: SequenceSpec {
                    count: 3,
                    days: 2.0,
                    min_jobs: 5,
                },
                ..ScenarioScale::default()
            }
        } else {
            ScenarioScale::default()
        },
    };
    eprintln!(
        "One-shot run: {tuples} tuples x {trials} trials on {cores} cores, top {top_k}, \
         then the 18-row Table-4 grid (seed {seed})..."
    );
    let t0 = std::time::Instant::now();
    let model = LublinModel::new(cores);
    let report = match checkpoint_dir {
        Some(dir) => {
            if resume {
                eprintln!("resuming from checkpoint dir {dir}...");
            } else {
                eprintln!("checkpointing each stage into {dir}...");
            }
            run_full_checkpointed(&config, &model, dir.as_ref(), resume).map_err(|e| match &e {
                RunError::Mismatch { .. } => format!(
                    "{e}\n(the checkpoint dir belongs to a different run; \
                         drop --resume to start fresh, or point --checkpoint-dir elsewhere)"
                ),
                _ => format!("{e}"),
            })?
        }
        None => run_full(&config, &model),
    };
    let markdown = full_run_markdown(&report);
    print!("{markdown}");
    eprintln!("[{:.1} s total]", t0.elapsed().as_secs_f64());
    if let Some(out) = flag_value(args, "--out")? {
        write_atomic(out, &markdown).map_err(|e| format!("cannot write {out}: {e}"))?;
        eprintln!("report written to {out}");
    }
    Ok(())
}

fn cmd_table4(args: &[String]) -> Result<(), String> {
    reject_unknown(args, 0, &[], &["--quick"])?;
    let scale = if has_flag(args, "--quick") {
        ScenarioScale {
            spec: SequenceSpec {
                count: 3,
                days: 2.0,
                min_jobs: 5,
            },
            ..ScenarioScale::default()
        }
    } else {
        ScenarioScale::default()
    };
    let lineup = paper_lineup();
    // One batched evaluation session across all 18 rows.
    let experiments = table4_experiments(&scale);
    for (i, experiment) in experiments.iter().enumerate() {
        eprintln!("[{:>2}/18] {}", i + 1, experiment.name);
    }
    let results = run_experiments(&experiments, &lineup);
    println!("{}", table4_markdown(&results));
    println!("{}", table4_comparison(&results));
    let wins = results.iter().filter(|r| learned_beat_adhoc(r)).count();
    println!("shape: best learned beats best ad-hoc in {wins}/18 rows (paper: 18/18)");
    Ok(())
}

fn cmd_scenarios(args: &[String]) -> Result<(), String> {
    reject_unknown(
        args,
        0,
        &[
            "--cores",
            "--days",
            "--load",
            "--seed",
            "--family",
            "--mtbf",
            "--mttr",
            "--fault-cores",
            "--fault-retries",
            "--fault-seed",
        ],
        &["--eval"],
    )?;
    let cores = usize_flag(args, "--cores", 256)? as u32;
    // span_days is f64 end to end: `--days 2.5` is a valid half-day span
    // (the old usize round-trip rejected it), and seeds parse as u64
    // directly rather than truncating through usize.
    let days = f64_flag(args, "--days", 7.0)?;
    let load = f64_flag(args, "--load", 0.8)?;
    let seed = u64_flag(args, "--seed", 0x5C17)?;

    let registry = ScenarioRegistry::builtin();
    let store = TraceStore::new();
    let params = ScenarioParams {
        cores,
        span_days: days,
        target_load: load,
    };

    println!(
        "workload scenario registry ({} cores, {days}-day span, target load {load:.2}, seed {seed}):\n",
        cores
    );
    println!(
        "  {:<16} {:>8} {:>10} {:>10} {:>11} {:>10}  description",
        "family", "jobs", "jobs/day", "load", "runtime CV", "mean cores"
    );
    for family in registry.families() {
        let c = family.calibration(&store, &params, seed);
        println!(
            "  {:<16} {:>8} {:>10.1} {:>10.3} {:>11.2} {:>10.1}  {}",
            family.name(),
            c.jobs,
            c.jobs_per_day,
            c.offered_load,
            c.runtime_cv,
            c.mean_cores,
            family.description(),
        );
    }

    // Optional deterministic fault injection for the evaluation below.
    let fault = fault_flags(args, cores, seed)?;

    if has_flag(args, "--eval") {
        let mut registry = registry;
        let names: Vec<String> = match flag_value(args, "--family")? {
            Some(name) => {
                registry
                    .get(name)
                    .ok_or_else(|| format!("unknown family {name:?}"))?;
                vec![name.to_string()]
            }
            None => registry.names().iter().map(|n| n.to_string()).collect(),
        };
        if let Some(profile) = &fault {
            // Re-register the selected families with the profile attached:
            // scenario_experiment carries it into each experiment row.
            for name in &names {
                let family = registry.get(name).expect("validated above").clone();
                registry.register(family.with_fault_profile(profile.clone()));
            }
            println!(
                "\nfault injection: MTBF {:.0}s, MTTR {:.0}s, {} cores per failure, {} retries",
                profile.mtbf, profile.mttr, profile.failure_cores, profile.max_retries
            );
        }
        let scale = ScenarioScale {
            spec: SequenceSpec {
                count: 3,
                days: 2.0,
                min_jobs: 5,
            },
            seed,
            ..ScenarioScale::default()
        };
        println!(
            "\nevaluating {} family(ies) under all three conditions...",
            names.len()
        );
        let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
        let results = scenario_results(
            &store,
            &registry,
            &name_refs,
            &params,
            &scale,
            &paper_lineup(),
        )?;
        for row in &results {
            print!("  {:<50}", row.name);
            for o in &row.outcomes {
                print!(" {}={:.2}", o.policy, o.median);
            }
            println!();
            if fault.is_some() {
                print!("  {:<50}", "    resilience (mean/seq):");
                for o in &row.outcomes {
                    print!(
                        " {}: pre={:.1} aband={:.1} lost={:.0}",
                        o.policy, o.mean_preempted, o.mean_abandoned, o.mean_lost_core_seconds
                    );
                }
                println!();
            }
        }
        println!(
            "({} trace builds for {} experiment rows — conditions share the store)",
            store.builds(),
            results.len()
        );
    }
    Ok(())
}

fn cmd_policies(args: &[String]) -> Result<(), String> {
    reject_unknown(args, 0, &[], &[])?;
    println!("built-in policies (lower score runs first):");
    for name in [
        "FCFS", "LCFS", "SPT", "LPT", "SAF", "LAF", "WFP", "UNI", "MF", "F1", "F2", "F3", "F4",
    ] {
        let p = by_name(name).expect("registry covers the list");
        println!(
            "  {:<5} {}",
            p.name(),
            if p.time_dependent() {
                "(aging: rescored every event)"
            } else {
                "(static: scored at arrival)"
            }
        );
    }
    // Print each learned formula so users see what they deploy.
    use dynsched::policies::LearnedPolicy;
    println!("\nlearned functions (Table 3):");
    for p in LearnedPolicy::table3() {
        println!("  {} = {}", p.name(), p.function());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn flag_value_reads_a_present_value() {
        let a = args(&["--policy", "SPT", "--kill"]);
        assert_eq!(flag_value(&a, "--policy"), Ok(Some("SPT")));
        assert_eq!(flag_value(&a, "--backfill"), Ok(None));
    }

    #[test]
    fn flag_value_rejects_a_missing_value() {
        // Regression: `train --tuples` used to run with the default 12
        // instead of erroring.
        let a = args(&["--tuples"]);
        assert!(flag_value(&a, "--tuples").is_err());
        assert!(usize_flag(&a, "--tuples", 12).is_err());
    }

    #[test]
    fn flag_value_rejects_a_flag_shaped_value() {
        // Regression: `--policy --kill` consumed "--kill" as the policy
        // name and failed later with a confusing "unknown policy".
        let a = args(&["--policy", "--kill"]);
        let err = flag_value(&a, "--policy").unwrap_err();
        assert!(err.contains("--kill"), "error should name the flag: {err}");
    }

    #[test]
    fn days_accept_fractions_and_seeds_parse_as_u64() {
        // Regression: --days round-tripped through usize, rejecting 2.5
        // even though span_days is f64; seeds truncated through usize.
        let a = args(&["--days", "2.5", "--seed", "18446744073709551615"]);
        assert_eq!(f64_flag(&a, "--days", 7.0), Ok(2.5));
        assert_eq!(u64_flag(&a, "--seed", 0), Ok(u64::MAX));
        assert!(f64_flag(&args(&["--days", "x"]), "--days", 7.0).is_err());
        assert!(u64_flag(&args(&["--seed", "-1"]), "--seed", 0).is_err());
    }

    #[test]
    fn unknown_flags_are_rejected_not_ignored() {
        // Regression: `train --tirals 500` (a typo for --trials) used to
        // run a full training with the default 8000 trials, silently.
        let err = cmd_train(&args(&["--tirals", "500"])).unwrap_err();
        assert!(
            err.contains("--tirals"),
            "error should name the typo: {err}"
        );
        assert!(
            err.contains("--trials"),
            "error should list known flags: {err}"
        );

        let err = cmd_run(&args(&["--quck"])).unwrap_err();
        assert!(err.contains("--quck"), "{err}");

        let err = cmd_table4(&args(&["--ful"])).unwrap_err();
        assert!(err.contains("--ful"), "{err}");

        let err = cmd_policies(&args(&["--verbose"])).unwrap_err();
        assert!(err.contains("--verbose"), "{err}");

        let err = cmd_scenarios(&args(&["--core", "64"])).unwrap_err();
        assert!(err.contains("--core"), "{err}");
    }

    #[test]
    fn excess_positionals_are_rejected() {
        // `train` takes no positionals: a stray word is an error, not a
        // silently ignored token.
        let err = cmd_train(&args(&["extra"])).unwrap_err();
        assert!(err.contains("extra"), "{err}");
        // `validate` takes at most two.
        let err = reject_unknown(&args(&["a.swf", "64", "stray"]), 2, &[], &[]).unwrap_err();
        assert!(err.contains("stray"), "{err}");
    }

    #[test]
    fn allowlist_accepts_known_shapes() {
        // A value flag consumes its value even when the value is
        // flag-shaped (flag_value rejects it later with a better message).
        assert!(reject_unknown(
            &args(&[
                "t.swf",
                "64",
                "--policy",
                "SPT",
                "--estimates",
                "--backfill",
                "easy"
            ]),
            2,
            &["--policy", "--backfill"],
            &["--estimates", "--kill"],
        )
        .is_ok());
        assert!(reject_unknown(
            &args(&["--checkpoint-dir", "ckpt", "--resume", "--quick"]),
            0,
            &["--checkpoint-dir"],
            &["--resume", "--quick"],
        )
        .is_ok());
    }

    #[test]
    fn resume_without_checkpoint_dir_is_an_error() {
        let err = cmd_run(&args(&["--resume"])).unwrap_err();
        assert!(err.contains("--checkpoint-dir"), "{err}");
    }

    #[test]
    fn empty_result_statistics_render_uniformly() {
        // Regression: AVEbsld fell back to NaN but mean wait to 0.0 — an
        // empty run read as a measured zero-wait schedule.
        assert_eq!(stat_or_na(None, 2), "n/a");
        assert_eq!(stat_or_na(Some(1.25), 2), "1.25");
        assert_eq!(stat_or_na(Some(3.0), 1), "3.0");
    }
}
