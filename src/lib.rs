//! # dynsched — dynamic HPC scheduling policies from simulation + ML
//!
//! A from-scratch Rust reproduction of Carastan-Santos & de Camargo,
//! *"Obtaining Dynamic Scheduling Policies with Simulation and Machine
//! Learning"* (SC'17). This facade crate re-exports the workspace members:
//!
//! * [`simkit`] — discrete-event simulation engine, RNG, distributions;
//! * [`cluster`] — platform model, jobs, bounded slowdown;
//! * [`workload`] — Lublin–Feitelson model, Tsafrir estimates, SWF traces;
//! * [`policies`] — baseline and learned queue-ordering policies;
//! * [`scheduler`] — online scheduler with EASY/conservative backfilling;
//! * [`mlreg`] — weighted nonlinear regression and function enumeration;
//! * [`core`] — the end-to-end training pipeline and experiment harness.
//!
//! See `examples/quickstart.rs` for a five-minute tour and `DESIGN.md` for
//! the full system inventory and experiment index.

pub use dynsched_cluster as cluster;
pub use dynsched_core as core;
pub use dynsched_mlreg as mlreg;
pub use dynsched_policies as policies;
pub use dynsched_scheduler as scheduler;
pub use dynsched_simkit as simkit;
pub use dynsched_workload as workload;
