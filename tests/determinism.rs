//! Reproducibility guarantees: one seed, one result — regardless of
//! parallelism.

use dynsched::cluster::Platform;
use dynsched::core::run_experiment;
use dynsched::core::scenarios::{model_scenario, Condition, ScenarioScale};
use dynsched::core::trials::{trial_scores, TrialSpec};
use dynsched::core::tuples::{TaskTuple, TupleSpec};
use dynsched::policies::paper_lineup;
use dynsched::simkit::Rng;
use dynsched::workload::{LublinModel, SequenceSpec};

#[test]
fn trial_scores_identical_across_thread_pools() {
    let model = LublinModel::new(64);
    let spec = TupleSpec {
        s_size: 4,
        q_size: 8,
        max_start_offset: 40_000.0,
    };
    let tuple = TaskTuple::generate(&spec, &model, &mut Rng::new(5));
    let trial_spec = TrialSpec {
        trials: 256,
        platform: Platform::new(64),
        tau: 10.0,
    };

    let wide = trial_scores(&tuple, &trial_spec, &Rng::new(11));
    let narrow = dynsched::simkit::parallel::with_worker_limit(1, || {
        trial_scores(&tuple, &trial_spec, &Rng::new(11))
    });
    let mid = dynsched::simkit::parallel::with_worker_limit(3, || {
        trial_scores(&tuple, &trial_spec, &Rng::new(11))
    });
    assert_eq!(wide, narrow, "results must not depend on thread count");
    assert_eq!(wide, mid, "results must not depend on thread count");
}

#[test]
fn scenario_and_experiment_are_seed_stable() {
    let scale = ScenarioScale {
        spec: SequenceSpec {
            count: 2,
            days: 1.0,
            min_jobs: 1,
        },
        ..ScenarioScale::default()
    };
    let lineup = paper_lineup();
    let a = run_experiment(
        &model_scenario(64, Condition::ActualRuntimes, &scale),
        &lineup,
    );
    let b = run_experiment(
        &model_scenario(64, Condition::ActualRuntimes, &scale),
        &lineup,
    );
    assert_eq!(a, b);
}

#[test]
fn different_seeds_give_different_workloads() {
    let mut scale_a = ScenarioScale {
        spec: SequenceSpec {
            count: 2,
            days: 1.0,
            min_jobs: 1,
        },
        ..ScenarioScale::default()
    };
    let exp_a = model_scenario(64, Condition::ActualRuntimes, &scale_a);
    scale_a.seed ^= 0xFFFF;
    let exp_b = model_scenario(64, Condition::ActualRuntimes, &scale_a);
    assert_ne!(exp_a.sequences, exp_b.sequences);
}
