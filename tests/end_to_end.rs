//! End-to-end integration: the full paper pipeline at miniature scale.
//!
//! Training data generation → score distribution → regression → learned
//! policy → dynamic scheduling experiment, crossing every crate boundary.

use dynsched::cluster::{Platform, DEFAULT_TAU};
use dynsched::core::pipeline::{learn_policies, TrainingConfig};
use dynsched::core::trials::TrialSpec;
use dynsched::core::tuples::TupleSpec;
use dynsched::core::{run_experiment, Experiment};
use dynsched::mlreg::{EnumerateOptions, TrainingSet};
use dynsched::policies::{BaseFunc, Fcfs, Policy};
use dynsched::scheduler::SchedulerConfig;
use dynsched::simkit::Rng;
use dynsched::workload::{LublinModel, Trace};

fn mini_training() -> TrainingConfig {
    TrainingConfig {
        tuple_spec: TupleSpec {
            s_size: 8,
            q_size: 16,
            max_start_offset: 100_000.0,
        },
        trial_spec: TrialSpec {
            trials: 1_500,
            platform: Platform::new(128),
            tau: DEFAULT_TAU,
        },
        tuples: 6,
        seed: 0xE2E,
    }
}

#[test]
fn pipeline_learns_a_plausible_policy() {
    let model = LublinModel::new(128);
    let mut opts = EnumerateOptions::default();
    opts.lm.max_iterations = 60;
    let report = learn_policies(&mini_training(), &model, &opts, 4);

    // The pooled distribution has one observation per Q task per tuple.
    assert_eq!(report.training_set.len(), 6 * 16);

    // The winner must be a sensible scheduling function: prioritize
    // earlier-arriving (smaller s) tasks, and at fixed arrival prefer the
    // smaller task — the monotonicity the paper reads off Fig. 3.
    let best = &report.fits[0].function;
    let early_small = best.eval(30.0, 2.0, 1_000.0);
    let late_small = best.eval(30.0, 2.0, 150_000.0);
    assert!(
        early_small < late_small,
        "earlier arrivals should score lower: {best}"
    );
    let small = best.eval(30.0, 2.0, 50_000.0);
    let huge = best.eval(50_000.0, 128.0, 50_000.0);
    assert!(small < huge, "small tasks should score lower: {best}");
}

#[test]
fn learned_policy_schedules_better_than_fcfs() {
    let model = LublinModel::new(128);
    let mut opts = EnumerateOptions::default();
    opts.lm.max_iterations = 60;
    let report = learn_policies(&mini_training(), &model, &opts, 1);
    let learned = report.policies.into_iter().next().expect("one policy");

    // A saturated workload on the same platform class.
    let mut rng = Rng::new(99);
    let mut gen = LublinModel::new(128);
    gen.arrival_scale = 0.15;
    let sequences: Vec<Trace> = (0..4).map(|_| gen.generate_jobs(250, &mut rng)).collect();
    let experiment = Experiment::new(
        "e2e",
        sequences,
        SchedulerConfig::actual_runtimes(Platform::new(128)),
    );
    let lineup: Vec<Box<dyn Policy>> = vec![Box::new(Fcfs), Box::new(learned)];
    let result = run_experiment(&experiment, &lineup);
    let fcfs = result.median_of("FCFS").expect("fcfs ran");
    let g1 = result.outcomes[1].median;
    assert!(
        g1 < fcfs,
        "freshly learned policy (median {g1}) should beat FCFS (median {fcfs})"
    );
}

#[test]
fn training_csv_roundtrips_through_the_artifact_format() {
    let model = LublinModel::new(128);
    let (_, training) = dynsched::core::generate_training_set(&mini_training(), &model);
    let csv = training.to_csv();
    let back = TrainingSet::from_csv(&csv).expect("own CSV parses");
    assert_eq!(back.len(), training.len());
    for (a, b) in training.observations().iter().zip(back.observations()) {
        assert!((a.score - b.score).abs() < 1e-12);
        assert_eq!(a.runtime, b.runtime);
    }
}

#[test]
fn table3_policies_have_the_published_structure() {
    // All four published policies share the (size-term) + c·log10(s) shape;
    // verify via the policy API rather than internal fields.
    use dynsched::policies::LearnedPolicy;
    for p in LearnedPolicy::table3() {
        let f = p.function();
        assert_eq!(
            f.gamma,
            BaseFunc::Log10,
            "{}: s-term must be log10",
            p.name()
        );
        assert!(
            f.coefficients[2] > 100.0,
            "{}: arrival term dominates",
            p.name()
        );
    }
}
