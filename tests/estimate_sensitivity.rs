//! Estimate-sensitivity study across crates: how much of a policy's
//! performance relies on estimate quality? Uses the workload transforms
//! (perfect / Tsafrir / shuffled estimates) against the estimate-driven
//! scheduler.

use dynsched::cluster::{Platform, DEFAULT_TAU};
use dynsched::policies::{LearnedPolicy, Policy, Spt};
use dynsched::scheduler::{simulate, QueueDiscipline, SchedulerConfig};
use dynsched::simkit::Rng;
use dynsched::workload::transform::{perfect_estimates, shuffle_estimates};
use dynsched::workload::{LublinModel, Trace, TsafrirEstimates};

fn saturated_trace(seed: u64) -> Trace {
    let mut model = LublinModel::new(64);
    model.arrival_scale = 0.08;
    model.daily_cycle = false;
    let mut rng = Rng::new(seed);
    let trace = model.generate_jobs(300, &mut rng);
    TsafrirEstimates::default().apply(&trace, &mut rng)
}

fn avebsld(trace: &Trace, policy: &dyn Policy) -> f64 {
    let config = SchedulerConfig::user_estimates(Platform::new(64));
    simulate(trace, &QueueDiscipline::Policy(policy), &config)
        .avg_bounded_slowdown(DEFAULT_TAU)
        .expect("jobs completed")
}

#[test]
fn spt_degrades_when_estimates_decorrelate_from_runtimes() {
    // SPT sorts by the estimate in estimate mode; shuffling estimates
    // destroys the information it relies on. Average over several seeds to
    // keep the comparison robust.
    let mut perfect_total = 0.0;
    let mut shuffled_total = 0.0;
    for seed in 0..5u64 {
        let trace = saturated_trace(seed);
        let perfect = perfect_estimates(&trace);
        let shuffled = shuffle_estimates(&trace, &mut Rng::new(seed ^ 0x5AFF));
        perfect_total += avebsld(&perfect, &Spt);
        shuffled_total += avebsld(&shuffled, &Spt);
    }
    assert!(
        shuffled_total > perfect_total,
        "SPT with shuffled estimates ({shuffled_total:.1}) must be worse than with \
         perfect estimates ({perfect_total:.1})"
    );
}

#[test]
fn tsafrir_estimates_sit_between_perfect_and_shuffled_for_spt() {
    let mut perfect_total = 0.0;
    let mut tsafrir_total = 0.0;
    for seed in 10..14u64 {
        let trace = saturated_trace(seed);
        perfect_total += avebsld(&perfect_estimates(&trace), &Spt);
        tsafrir_total += avebsld(&trace, &Spt);
    }
    // Coarse, modal estimates lose information, so realistic estimates
    // should not beat clairvoyance (ties possible on easy seeds).
    assert!(
        tsafrir_total >= perfect_total * 0.95,
        "tsafrir {tsafrir_total:.1} vs perfect {perfect_total:.1}"
    );
}

#[test]
fn f1_is_robust_to_estimate_shuffling() {
    // F1's score leans on log10(s) with a large coefficient and only
    // log10(r) for the size term, so estimate corruption should hurt it
    // far less (relatively) than SPT — the §4.2.2 robustness narrative.
    let mut f1_ratio_total = 0.0;
    let mut spt_ratio_total = 0.0;
    let f1 = LearnedPolicy::f1();
    for seed in 20..24u64 {
        let trace = saturated_trace(seed);
        let perfect = perfect_estimates(&trace);
        let shuffled = shuffle_estimates(&trace, &mut Rng::new(seed));
        f1_ratio_total += avebsld(&shuffled, &f1) / avebsld(&perfect, &f1).max(1.0);
        spt_ratio_total += avebsld(&shuffled, &Spt) / avebsld(&perfect, &Spt).max(1.0);
    }
    assert!(
        f1_ratio_total < spt_ratio_total * 1.5,
        "F1 degradation ({f1_ratio_total:.2}) should not wildly exceed SPT's ({spt_ratio_total:.2})"
    );
}
