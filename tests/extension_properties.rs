//! Property tests for the post-initial-build extensions: walltime kills,
//! deep reservations, transforms, and the streaming quantile.

use dynsched::cluster::{Job, Platform};
use dynsched::policies::{paper_lineup, Fcfs};
use dynsched::scheduler::{simulate, BackfillMode, QueueDiscipline, SchedulerConfig};
use dynsched::simkit::quantile::P2Quantile;
use dynsched::simkit::Rng;
use dynsched::workload::transform::{rescale_platform, scale_load};
use dynsched::workload::Trace;
use proptest::prelude::*;

fn arb_jobs(max_jobs: usize) -> impl Strategy<Value = Vec<Job>> {
    prop::collection::vec(
        (0.0f64..5_000.0, 1.0f64..5_000.0, 0.2f64..3.0, 1u32..32),
        1..max_jobs,
    )
    .prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(|(i, (submit, runtime, over, cores))| {
                // `over` below 1 produces under-estimates on purpose.
                Job::new(i as u32, submit, runtime, (runtime * over).max(1.0), cores)
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn kill_mode_schedules_are_legal(jobs in arb_jobs(30)) {
        let mut config = SchedulerConfig::user_estimates(Platform::new(32));
        config.kill_at_estimate = true;
        let trace = Trace::from_jobs(jobs.clone());
        let result = simulate(&trace, &QueueDiscipline::Policy(&Fcfs), &config);
        prop_assert_eq!(result.completed.len(), jobs.len());
        for c in &result.completed {
            // Executed exactly min(runtime, estimate); killed flag agrees.
            let expect = c.job.runtime.min(c.job.estimate);
            prop_assert!((c.executed() - expect).abs() < 1e-9);
            prop_assert_eq!(c.was_killed(), c.job.estimate < c.job.runtime - 1e-9);
            prop_assert!(c.bounded_slowdown(10.0) >= 1.0);
        }
    }

    #[test]
    fn deep_reservations_stay_legal_for_every_depth(
        jobs in arb_jobs(25),
        depth in 1u32..6,
        policy_idx in 0usize..8,
    ) {
        let lineup = paper_lineup();
        let mut config = SchedulerConfig::user_estimates(Platform::new(32));
        config.backfill = BackfillMode::Aggressive;
        config.reservation_depth = depth;
        let trace = Trace::from_jobs(jobs.clone());
        let result = simulate(&trace, &QueueDiscipline::Policy(lineup[policy_idx].as_ref()), &config);
        prop_assert_eq!(result.completed.len(), jobs.len());
        // Core conservation via event replay.
        let mut events: Vec<(f64, i64)> = Vec::new();
        for c in &result.completed {
            prop_assert!(c.start >= c.job.submit);
            events.push((c.start, c.job.cores as i64));
            events.push((c.finish, -(c.job.cores as i64)));
        }
        events.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let mut used = 0i64;
        for (_, d) in events {
            used += d;
            prop_assert!((0..=32).contains(&used));
        }
    }

    #[test]
    fn scale_load_preserves_job_multiset(jobs in arb_jobs(25), factor in 0.25f64..4.0) {
        let trace = Trace::from_jobs(jobs);
        let scaled = scale_load(&trace, factor);
        prop_assert_eq!(scaled.len(), trace.len());
        for (a, b) in trace.jobs().iter().zip(scaled.jobs()) {
            prop_assert_eq!(a.runtime, b.runtime);
            prop_assert_eq!(a.cores, b.cores);
            prop_assert_eq!(a.estimate, b.estimate);
        }
        // Round-tripping the factor restores submit times.
        let back = scale_load(&scaled, 1.0 / factor);
        for (a, b) in trace.jobs().iter().zip(back.jobs()) {
            prop_assert!((a.submit - b.submit).abs() < 1e-6 * a.submit.max(1.0));
        }
    }

    #[test]
    fn rescale_platform_respects_bounds(jobs in arb_jobs(25), to_cores in 2u32..512) {
        let trace = Trace::from_jobs(jobs);
        let rescaled = rescale_platform(&trace, 32, to_cores);
        for j in rescaled.jobs() {
            prop_assert!(j.cores >= 1 && j.cores <= to_cores);
        }
        // Serial jobs stay serial.
        for (a, b) in trace.jobs().iter().zip(rescaled.jobs()) {
            if a.cores == 1 {
                prop_assert_eq!(b.cores, 1);
            }
        }
    }

    #[test]
    fn p2_median_tracks_exact_median(seed in 0u64..500) {
        let mut rng = Rng::new(seed);
        let xs: Vec<f64> = (0..2_000).map(|_| rng.next_f64() * 100.0).collect();
        let mut p2 = P2Quantile::median();
        for &x in &xs {
            p2.push(x);
        }
        let mut sorted = xs.clone();
        sorted.sort_by(f64::total_cmp);
        let exact = sorted[1_000];
        let est = p2.estimate().unwrap();
        prop_assert!((est - exact).abs() < 5.0, "est {est} exact {exact}");
    }
}
