//! Property tests for the post-initial-build extensions: walltime kills,
//! deep reservations, transforms, and the streaming quantile. Cases are
//! generated with the in-tree deterministic RNG (no crates.io access, so no
//! proptest); failures report the case seed that reproduces them.

use dynsched::cluster::{Job, Platform};
use dynsched::policies::{paper_lineup, Fcfs};
use dynsched::scheduler::{simulate, BackfillMode, QueueDiscipline, SchedulerConfig};
use dynsched::simkit::quantile::P2Quantile;
use dynsched::simkit::Rng;
use dynsched::workload::transform::{rescale_platform, scale_load};
use dynsched::workload::Trace;

/// Random jobs whose estimates may under- *or* over-shoot the runtime
/// (factor in `[0.2, 3)`).
fn random_jobs(rng: &mut Rng, max_jobs: usize) -> Vec<Job> {
    let n = rng.range_u64(1, max_jobs as u64) as usize;
    (0..n)
        .map(|i| {
            let submit = rng.range_f64(0.0, 5_000.0);
            let runtime = rng.range_f64(1.0, 5_000.0);
            let over = rng.range_f64(0.2, 3.0);
            let cores = rng.range_u64(1, 31) as u32;
            // `over` below 1 produces under-estimates on purpose.
            Job::new(i as u32, submit, runtime, (runtime * over).max(1.0), cores)
        })
        .collect()
}

#[test]
fn kill_mode_schedules_are_legal() {
    for case in 0..48u64 {
        let mut rng = Rng::new(0x1111 ^ case);
        let jobs = random_jobs(&mut rng, 30);
        let mut config = SchedulerConfig::user_estimates(Platform::new(32));
        config.kill_at_estimate = true;
        let trace = Trace::from_jobs(jobs.clone());
        let result = simulate(&trace, &QueueDiscipline::Policy(&Fcfs), &config);
        assert_eq!(result.completed.len(), jobs.len(), "case {case}");
        for c in &result.completed {
            // Executed exactly min(runtime, estimate); killed flag agrees.
            let expect = c.job.runtime.min(c.job.estimate);
            assert!((c.executed() - expect).abs() < 1e-9, "case {case}");
            assert_eq!(
                c.was_killed(),
                c.job.estimate < c.job.runtime - 1e-9,
                "case {case}"
            );
            assert!(c.bounded_slowdown(10.0) >= 1.0, "case {case}");
        }
    }
}

#[test]
fn deep_reservations_stay_legal_for_every_depth() {
    let lineup = paper_lineup();
    for case in 0..48u64 {
        let mut rng = Rng::new(0x2222 ^ case);
        let jobs = random_jobs(&mut rng, 25);
        let depth = rng.range_u64(1, 5) as u32;
        let policy = &lineup[rng.next_below(lineup.len() as u64) as usize];
        let mut config = SchedulerConfig::user_estimates(Platform::new(32));
        config.backfill = BackfillMode::Aggressive;
        config.reservation_depth = depth;
        let trace = Trace::from_jobs(jobs.clone());
        let result = simulate(&trace, &QueueDiscipline::Policy(policy.as_ref()), &config);
        assert_eq!(result.completed.len(), jobs.len(), "case {case}");
        // Core conservation via event replay.
        let mut events: Vec<(f64, i64)> = Vec::new();
        for c in &result.completed {
            assert!(c.start >= c.job.submit, "case {case}");
            events.push((c.start, c.job.cores as i64));
            events.push((c.finish, -(c.job.cores as i64)));
        }
        events.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let mut used = 0i64;
        for (_, d) in events {
            used += d;
            assert!(
                (0..=32).contains(&used),
                "case {case}: depth {depth}, {used} in use"
            );
        }
    }
}

#[test]
fn scale_load_preserves_job_multiset() {
    for case in 0..48u64 {
        let mut rng = Rng::new(0x3333 ^ case);
        let jobs = random_jobs(&mut rng, 25);
        let factor = rng.range_f64(0.25, 4.0);
        let trace = Trace::from_jobs(jobs);
        let scaled = scale_load(&trace, factor);
        assert_eq!(scaled.len(), trace.len(), "case {case}");
        for (a, b) in trace.jobs().iter().zip(scaled.jobs()) {
            assert_eq!(a.runtime, b.runtime, "case {case}");
            assert_eq!(a.cores, b.cores, "case {case}");
            assert_eq!(a.estimate, b.estimate, "case {case}");
        }
        // Round-tripping the factor restores submit times.
        let back = scale_load(&scaled, 1.0 / factor);
        for (a, b) in trace.jobs().iter().zip(back.jobs()) {
            assert!(
                (a.submit - b.submit).abs() < 1e-6 * a.submit.max(1.0),
                "case {case}"
            );
        }
    }
}

#[test]
fn rescale_platform_respects_bounds() {
    for case in 0..48u64 {
        let mut rng = Rng::new(0x4444 ^ case);
        let jobs = random_jobs(&mut rng, 25);
        let to_cores = rng.range_u64(2, 511) as u32;
        let trace = Trace::from_jobs(jobs);
        let rescaled = rescale_platform(&trace, 32, to_cores);
        for j in rescaled.jobs() {
            assert!(j.cores >= 1 && j.cores <= to_cores, "case {case}");
        }
        // Serial jobs stay serial.
        for (a, b) in trace.jobs().iter().zip(rescaled.jobs()) {
            if a.cores == 1 {
                assert_eq!(b.cores, 1, "case {case}");
            }
        }
    }
}

#[test]
fn p2_median_tracks_exact_median() {
    for seed in 0..100u64 {
        let mut rng = Rng::new(seed);
        let xs: Vec<f64> = (0..2_000).map(|_| rng.next_f64() * 100.0).collect();
        let mut p2 = P2Quantile::median();
        for &x in &xs {
            p2.push(x);
        }
        let mut sorted = xs.clone();
        sorted.sort_by(f64::total_cmp);
        let exact = sorted[1_000];
        let est = p2.estimate().unwrap();
        assert!(
            (est - exact).abs() < 5.0,
            "seed {seed}: est {est} exact {exact}"
        );
    }
}
