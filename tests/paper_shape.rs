//! Shape checks against the paper's headline claims, at reduced scale.
//!
//! Absolute medians depend on workload calibration; these tests assert the
//! *structural* results the paper reports: learned policies beat the
//! ad-hoc line-up, backfilling helps FCFS the most, and estimates degrade
//! everyone but the learned policies stay ahead.

use dynsched::core::scenarios::{model_scenario, Condition, ScenarioScale};
use dynsched::core::{learned_beat_adhoc, run_experiment, ExperimentResult};
use dynsched::policies::paper_lineup;
use dynsched::workload::SequenceSpec;

fn quick_scale() -> ScenarioScale {
    ScenarioScale {
        spec: SequenceSpec {
            count: 4,
            days: 3.0,
            min_jobs: 10,
        },
        ..ScenarioScale::default()
    }
}

fn run(condition: Condition) -> ExperimentResult {
    let scale = quick_scale();
    let experiment = model_scenario(256, condition, &scale);
    run_experiment(&experiment, &paper_lineup())
}

#[test]
fn learned_policies_beat_adhoc_on_the_model_actual_runtimes() {
    let result = run(Condition::ActualRuntimes);
    assert!(
        learned_beat_adhoc(&result),
        "best F must beat best ad-hoc: {:?}",
        result
            .outcomes
            .iter()
            .map(|o| (o.policy.clone(), o.median))
            .collect::<Vec<_>>()
    );
    // FCFS is the weakest of the line-up on a saturated model workload.
    let fcfs = result.median_of("FCFS").unwrap();
    for p in ["F1", "F2", "F3", "F4", "SPT", "UNI"] {
        assert!(result.median_of(p).unwrap() < fcfs, "{p} should beat FCFS");
    }
}

#[test]
fn learned_policies_stay_ahead_with_user_estimates() {
    let result = run(Condition::UserEstimates);
    assert!(learned_beat_adhoc(&result));
}

#[test]
fn backfilling_helps_fcfs_most() {
    let strict = run(Condition::UserEstimates);
    let backfilled = run(Condition::EstimatesWithBackfilling);
    let gain = |r1: &ExperimentResult, r2: &ExperimentResult, p: &str| {
        r1.median_of(p).unwrap() / r2.median_of(p).unwrap().max(1.0)
    };
    let fcfs_gain = gain(&strict, &backfilled, "FCFS");
    assert!(fcfs_gain > 1.0, "EASY must improve FCFS (gain {fcfs_gain})");
    // The learned policies gain less than FCFS does (better initial order
    // leaves less to backfill — §4.2.3).
    let f1_gain = gain(&strict, &backfilled, "F1");
    assert!(
        fcfs_gain > f1_gain,
        "FCFS should benefit more from backfilling (FCFS {fcfs_gain}, F1 {f1_gain})"
    );
    // And with backfilling the learned policies still lead.
    assert!(learned_beat_adhoc(&backfilled));
}
