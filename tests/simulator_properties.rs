//! Property-based tests of the scheduling substrate (proptest).
//!
//! These check the invariants DESIGN.md promises on randomly generated
//! workloads: schedule legality (no early starts, exact runtimes, full
//! completion), metric bounds, score-distribution normalization, SWF and
//! expression round-trips.

use dynsched::cluster::{Job, Platform, DEFAULT_TAU};
use dynsched::policies::{paper_lineup, ExprPolicy, Policy, TaskView};
use dynsched::scheduler::{simulate, BackfillMode, QueueDiscipline, SchedulerConfig};
use dynsched::workload::{parse_swf_trace, write_swf_trace, Trace};
use proptest::prelude::*;

/// Strategy: a small random rigid-job trace that fits a 32-core machine.
fn arb_jobs(max_jobs: usize) -> impl Strategy<Value = Vec<Job>> {
    prop::collection::vec(
        (0.0f64..5_000.0, 1.0f64..5_000.0, 1.0f64..3.0, 1u32..32),
        1..max_jobs,
    )
    .prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(|(i, (submit, runtime, over, cores))| {
                Job::new(i as u32, submit, runtime, runtime * over, cores)
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn schedule_is_legal_under_every_policy_and_backfill_mode(
        jobs in arb_jobs(40),
        policy_idx in 0usize..8,
        backfill_idx in 0usize..3,
    ) {
        let lineup = paper_lineup();
        let policy = &lineup[policy_idx];
        let backfill = [BackfillMode::None, BackfillMode::Aggressive, BackfillMode::Conservative][backfill_idx];
        let mut config = SchedulerConfig::user_estimates(Platform::new(32));
        config.backfill = backfill;
        let trace = Trace::from_jobs(jobs.clone());
        let result = simulate(&trace, &QueueDiscipline::Policy(policy.as_ref()), &config);

        // Everything completes, exactly once.
        prop_assert_eq!(result.completed.len(), jobs.len());
        let mut seen: Vec<u32> = result.completed.iter().map(|c| c.job.id).collect();
        seen.sort_unstable();
        let mut expect: Vec<u32> = jobs.iter().map(|j| j.id).collect();
        expect.sort_unstable();
        prop_assert_eq!(seen, expect);

        for c in &result.completed {
            // Causality and exact execution.
            prop_assert!(c.start >= c.job.submit);
            prop_assert!((c.finish - (c.start + c.job.runtime)).abs() < 1e-9);
            // Metric bound.
            prop_assert!(c.bounded_slowdown(DEFAULT_TAU) >= 1.0);
        }
        // Utilization is a proper fraction.
        prop_assert!(result.utilization >= 0.0 && result.utilization <= 1.0 + 1e-9);
    }

    #[test]
    fn cores_never_oversubscribed(jobs in arb_jobs(30)) {
        // Replay the completed schedule and integrate core usage at every
        // start/finish instant.
        let trace = Trace::from_jobs(jobs);
        let config = SchedulerConfig::estimates_with_backfilling(Platform::new(32));
        let lineup = paper_lineup();
        let result = simulate(&trace, &QueueDiscipline::Policy(lineup[7].as_ref()), &config);
        let mut events: Vec<(f64, i64)> = Vec::new();
        for c in &result.completed {
            events.push((c.start, c.job.cores as i64));
            events.push((c.finish, -(c.job.cores as i64)));
        }
        // Releases before grants at equal timestamps.
        events.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let mut used = 0i64;
        for (_, delta) in events {
            used += delta;
            prop_assert!(used <= 32, "oversubscribed: {used} cores in use");
            prop_assert!(used >= 0);
        }
    }

    #[test]
    fn policy_scores_are_total_orderable(
        r in 0.0f64..1e7,
        n in 1u32..100_000,
        s in 0.0f64..1e7,
        dt in 0.0f64..1e6,
    ) {
        let view = TaskView { processing_time: r, cores: n, submit: s, now: s + dt };
        for p in paper_lineup() {
            let score = p.score(&view);
            prop_assert!(!score.is_nan(), "{} produced NaN at r={r} n={n} s={s}", p.name());
        }
    }

    #[test]
    fn swf_roundtrip_preserves_jobs(jobs in arb_jobs(25)) {
        // SWF stores integral seconds for runtimes we format as %.2f;
        // restrict to jobs with 2-decimal-representable times by rounding.
        let rounded: Vec<Job> = jobs
            .into_iter()
            .map(|j| Job::new(
                j.id,
                (j.submit * 100.0).round() / 100.0,
                (j.runtime * 100.0).round() / 100.0,
                (j.estimate * 100.0).round() / 100.0,
                j.cores,
            ))
            .collect();
        let trace = Trace::from_jobs(rounded);
        let text = write_swf_trace(&trace, 32);
        let back = parse_swf_trace(&text).unwrap();
        prop_assert_eq!(back.len(), trace.len());
        for (a, b) in trace.jobs().iter().zip(back.jobs()) {
            prop_assert!((a.submit - b.submit).abs() < 0.011);
            prop_assert!((a.runtime - b.runtime).abs() < 0.011);
            prop_assert!((a.estimate - b.estimate).abs() < 0.011);
            prop_assert_eq!(a.cores, b.cores);
        }
    }

    #[test]
    fn expression_print_parse_is_identity_on_random_views(
        r in 0.0f64..1e6,
        n in 1u32..4_096,
        s in 0.0f64..1e6,
    ) {
        let sources = [
            "log10(r)*n + 870*log10(s)",
            "sqrt(r)*n - inv(s + 1)",
            "r / (n + 1) + s / 86400",
            "-(w/r)^3 * n",
        ];
        let view = TaskView { processing_time: r, cores: n, submit: s, now: s + 50.0 };
        for src in sources {
            let p1 = ExprPolicy::parse("a", src).unwrap();
            let printed = p1.expr().to_string();
            let p2 = ExprPolicy::parse("b", &printed).unwrap();
            let (v1, v2) = (p1.score(&view), p2.score(&view));
            prop_assert!(
                (v1 - v2).abs() <= 1e-9 * v1.abs().max(1.0),
                "{src} -> {printed}: {v1} vs {v2}"
            );
        }
    }
}

#[test]
fn trial_scores_always_sum_to_one() {
    // Deterministic variant of the normalization property over several
    // random tuples (proptest-driving the full trial machinery is too slow).
    use dynsched::core::trials::{trial_scores, TrialSpec};
    use dynsched::core::tuples::{TaskTuple, TupleSpec};
    use dynsched::simkit::Rng;
    use dynsched::workload::LublinModel;

    let model = LublinModel::new(64);
    let spec = TupleSpec { s_size: 4, q_size: 8, max_start_offset: 40_000.0 };
    let trial_spec = TrialSpec { trials: 96, platform: Platform::new(64), tau: DEFAULT_TAU };
    for seed in 0..8u64 {
        let tuple = TaskTuple::generate(&spec, &model, &mut Rng::new(seed));
        let scores = trial_scores(&tuple, &trial_spec, &Rng::new(seed ^ 0xABCD));
        assert!((scores.total() - 1.0).abs() < 1e-9, "seed {seed}: {}", scores.total());
        assert!(scores.scores.iter().all(|&s| s >= 0.0));
    }
}
