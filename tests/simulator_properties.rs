//! Property-based tests of the scheduling substrate.
//!
//! These check the invariants DESIGN.md promises on randomly generated
//! workloads: schedule legality (no early starts, exact runtimes, full
//! completion), metric bounds, score-distribution normalization, SWF and
//! expression round-trips. Cases are generated with the in-tree
//! deterministic RNG (the build has no crates.io access, so no proptest);
//! every failure reports the case seed, which reproduces it exactly.

use dynsched::cluster::{Job, Platform, DEFAULT_TAU};
use dynsched::policies::{paper_lineup, ExprPolicy, Policy, TaskView};
use dynsched::scheduler::{simulate, BackfillMode, QueueDiscipline, SchedulerConfig};
use dynsched::simkit::Rng;
use dynsched::workload::{parse_swf_trace, write_swf_trace, Trace};

/// A small random rigid-job trace that fits a 32-core machine. Estimates
/// are over-estimates (factor in `[1, 3)`).
fn random_jobs(rng: &mut Rng, max_jobs: usize) -> Vec<Job> {
    let n = rng.range_u64(1, max_jobs as u64) as usize;
    (0..n)
        .map(|i| {
            let submit = rng.range_f64(0.0, 5_000.0);
            let runtime = rng.range_f64(1.0, 5_000.0);
            let over = rng.range_f64(1.0, 3.0);
            let cores = rng.range_u64(1, 31) as u32;
            Job::new(i as u32, submit, runtime, runtime * over, cores)
        })
        .collect()
}

#[test]
fn schedule_is_legal_under_every_policy_and_backfill_mode() {
    let lineup = paper_lineup();
    let modes = [
        BackfillMode::None,
        BackfillMode::Aggressive,
        BackfillMode::Conservative,
    ];
    for case in 0..64u64 {
        let mut rng = Rng::new(0xA11CE ^ case);
        let jobs = random_jobs(&mut rng, 40);
        let policy = &lineup[rng.next_below(lineup.len() as u64) as usize];
        let backfill = modes[rng.next_below(3) as usize];
        let mut config = SchedulerConfig::user_estimates(Platform::new(32));
        config.backfill = backfill;
        let trace = Trace::from_jobs(jobs.clone());
        let result = simulate(&trace, &QueueDiscipline::Policy(policy.as_ref()), &config);

        // Everything completes, exactly once.
        assert_eq!(result.completed.len(), jobs.len(), "case {case}");
        let mut seen: Vec<u32> = result.completed.iter().map(|c| c.job.id).collect();
        seen.sort_unstable();
        let mut expect: Vec<u32> = jobs.iter().map(|j| j.id).collect();
        expect.sort_unstable();
        assert_eq!(seen, expect, "case {case}");

        for c in &result.completed {
            // Causality and exact execution.
            assert!(c.start >= c.job.submit, "case {case}: early start");
            assert!(
                (c.finish - (c.start + c.job.runtime)).abs() < 1e-9,
                "case {case}: inexact execution"
            );
            // Metric bound.
            assert!(c.bounded_slowdown(DEFAULT_TAU) >= 1.0, "case {case}");
        }
        // Utilization is a proper fraction.
        assert!(
            result.utilization >= 0.0 && result.utilization <= 1.0 + 1e-9,
            "case {case}: utilization {}",
            result.utilization
        );
    }
}

#[test]
fn cores_never_oversubscribed() {
    let lineup = paper_lineup();
    for case in 0..64u64 {
        let mut rng = Rng::new(0xB0B ^ case);
        let jobs = random_jobs(&mut rng, 30);
        // Replay the completed schedule and integrate core usage at every
        // start/finish instant.
        let trace = Trace::from_jobs(jobs);
        let config = SchedulerConfig::estimates_with_backfilling(Platform::new(32));
        let result = simulate(
            &trace,
            &QueueDiscipline::Policy(lineup[7].as_ref()),
            &config,
        );
        let mut events: Vec<(f64, i64)> = Vec::new();
        for c in &result.completed {
            events.push((c.start, c.job.cores as i64));
            events.push((c.finish, -(c.job.cores as i64)));
        }
        // Releases before grants at equal timestamps.
        events.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let mut used = 0i64;
        for (_, delta) in events {
            used += delta;
            assert!(
                used <= 32,
                "case {case}: oversubscribed, {used} cores in use"
            );
            assert!(used >= 0, "case {case}");
        }
    }
}

#[test]
fn policy_scores_are_total_orderable() {
    for case in 0..256u64 {
        let mut rng = Rng::new(0xCAFE ^ case);
        let r = rng.range_f64(0.0, 1e7);
        let n = rng.range_u64(1, 99_999) as u32;
        let s = rng.range_f64(0.0, 1e7);
        let dt = rng.range_f64(0.0, 1e6);
        let view = TaskView {
            processing_time: r,
            cores: n,
            submit: s,
            now: s + dt,
        };
        for p in paper_lineup() {
            let score = p.score(&view);
            assert!(
                !score.is_nan(),
                "{} produced NaN at r={r} n={n} s={s}",
                p.name()
            );
        }
    }
}

#[test]
fn swf_roundtrip_preserves_jobs() {
    for case in 0..64u64 {
        let mut rng = Rng::new(0xD00D ^ case);
        let jobs = random_jobs(&mut rng, 25);
        // SWF stores integral seconds for runtimes we format as %.2f;
        // restrict to jobs with 2-decimal-representable times by rounding.
        let rounded: Vec<Job> = jobs
            .into_iter()
            .map(|j| {
                Job::new(
                    j.id,
                    (j.submit * 100.0).round() / 100.0,
                    (j.runtime * 100.0).round() / 100.0,
                    (j.estimate * 100.0).round() / 100.0,
                    j.cores,
                )
            })
            .collect();
        let trace = Trace::from_jobs(rounded);
        let text = write_swf_trace(&trace, 32);
        let back = parse_swf_trace(&text).unwrap();
        assert_eq!(back.len(), trace.len(), "case {case}");
        for (a, b) in trace.jobs().iter().zip(back.jobs()) {
            assert!((a.submit - b.submit).abs() < 0.011, "case {case}");
            assert!((a.runtime - b.runtime).abs() < 0.011, "case {case}");
            assert!((a.estimate - b.estimate).abs() < 0.011, "case {case}");
            assert_eq!(a.cores, b.cores, "case {case}");
        }
    }
}

#[test]
fn expression_print_parse_is_identity_on_random_views() {
    let sources = [
        "log10(r)*n + 870*log10(s)",
        "sqrt(r)*n - inv(s + 1)",
        "r / (n + 1) + s / 86400",
        "-(w/r)^3 * n",
    ];
    for case in 0..64u64 {
        let mut rng = Rng::new(0xE44 ^ case);
        let r = rng.range_f64(0.0, 1e6);
        let n = rng.range_u64(1, 4_095) as u32;
        let s = rng.range_f64(0.0, 1e6);
        let view = TaskView {
            processing_time: r,
            cores: n,
            submit: s,
            now: s + 50.0,
        };
        for src in sources {
            let p1 = ExprPolicy::parse("a", src).unwrap();
            let printed = p1.expr().to_string();
            let p2 = ExprPolicy::parse("b", &printed).unwrap();
            let (v1, v2) = (p1.score(&view), p2.score(&view));
            assert!(
                (v1 - v2).abs() <= 1e-9 * v1.abs().max(1.0),
                "case {case}: {src} -> {printed}: {v1} vs {v2}"
            );
        }
    }
}

#[test]
fn trial_scores_always_sum_to_one() {
    // Deterministic variant of the normalization property over several
    // random tuples (driving the full trial machinery per case is too slow).
    use dynsched::core::trials::{trial_scores, TrialSpec};
    use dynsched::core::tuples::{TaskTuple, TupleSpec};
    use dynsched::workload::LublinModel;

    let model = LublinModel::new(64);
    let spec = TupleSpec {
        s_size: 4,
        q_size: 8,
        max_start_offset: 40_000.0,
    };
    let trial_spec = TrialSpec {
        trials: 96,
        platform: Platform::new(64),
        tau: DEFAULT_TAU,
    };
    for seed in 0..8u64 {
        let tuple = TaskTuple::generate(&spec, &model, &mut Rng::new(seed));
        let scores = trial_scores(&tuple, &trial_spec, &Rng::new(seed ^ 0xABCD));
        assert!(
            (scores.total() - 1.0).abs() < 1e-9,
            "seed {seed}: {}",
            scores.total()
        );
        assert!(scores.scores.iter().all(|&s| s >= 0.0));
    }
}
